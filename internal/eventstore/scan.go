package eventstore

import (
	"fmt"
	"net/netip"
	"os"
	"sort"
	"time"
)

// Query filters a Scan. The zero Query matches everything.
type Query struct {
	// From/To bound event time as [From, To); a zero bound is open.
	From, To time.Time
	// Collector, when non-empty, matches events from that collector.
	Collector string
	// PeerAS/PeerAddr, when either is set, match events of that exact
	// peer (both fields are compared).
	PeerAS   uint32
	PeerAddr netip.Addr
	// Prefix, when valid, matches events carrying that exact prefix.
	// Events with no prefixes (session/state events) never match a
	// prefix filter.
	Prefix netip.Prefix
	// Kind, when non-zero, matches events of that payload kind.
	Kind uint8
}

func (q Query) hasPeer() bool { return q.PeerAS != 0 || q.PeerAddr.IsValid() }

func (q Query) peerKey() peerKey { return peerKey{as: q.PeerAS, addr: q.PeerAddr} }

func (q Query) timeMatches(ns int64) bool {
	if !q.From.IsZero() && ns < q.From.UnixNano() {
		return false
	}
	if !q.To.IsZero() && ns >= q.To.UnixNano() {
		return false
	}
	return true
}

// snapshot pins the store's segment set for a lock-free read: sealed
// segments by refcount, the active segment by (path, size) — sizes only
// ever cover whole frames, so a bounded sequential scan of the live file
// is safe against concurrent appends.
type snapshot struct {
	segs       []*segment
	activePath string
	activeSize int64
}

func (s *Store) snapshot() (snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return snapshot{}, ErrClosed
	}
	s.scans.Add(1)
	sn := snapshot{segs: make([]*segment, len(s.segs))}
	copy(sn.segs, s.segs)
	for _, seg := range sn.segs {
		seg.acquire()
	}
	if s.w != nil && s.w.count() > 0 {
		sn.activePath = s.w.path
		sn.activeSize = s.w.size
	}
	return sn, nil
}

func (s *Store) releaseSnapshot(sn snapshot) {
	for _, seg := range sn.segs {
		seg.release()
	}
	s.scans.Done()
}

// makeEvent assembles an Event from a decoded frame. With copy false the
// payload (and prefix scratch) alias backing storage valid only until the
// next event; with copy true everything is retention-safe.
func makeEvent(e rawEvent, colls []string, peers []peerKey, prefs []netip.Prefix, scratch *[]netip.Prefix, copyOut bool) Event {
	ev := Event{
		Seq:     e.seq,
		Time:    time.Unix(0, e.ns),
		Kind:    e.kind,
		Payload: e.payload,
	}
	if int(e.coll) < len(colls) {
		ev.Collector = colls[e.coll]
	}
	if e.peer != noPeer && int(e.peer) < len(peers) {
		pk := peers[e.peer]
		ev.PeerAS, ev.PeerAddr = pk.as, pk.addr
	}
	if n := e.nPrefixes(); n > 0 {
		*scratch = (*scratch)[:0]
		for i := 0; i < n; i++ {
			if id := e.prefixID(i); int(id) < len(prefs) {
				*scratch = append(*scratch, prefs[id])
			}
		}
		ev.Prefixes = *scratch
	}
	if copyOut {
		ev.Payload = append([]byte(nil), e.payload...)
		if len(ev.Prefixes) > 0 {
			ev.Prefixes = append([]netip.Prefix(nil), ev.Prefixes...)
		}
	}
	return ev
}

// Scan streams matching events in sequence order. The callback's Event
// payload (and Prefixes slice) alias store-owned memory — mmap'd segment
// data — and are valid only for the duration of the callback; this is the
// zero-copy path that feeds MRT payloads straight into bgp.Scratch.
// Returning an error from fn stops the scan and returns that error.
func (s *Store) Scan(q Query, fn func(Event) error) error {
	sn, err := s.snapshot()
	if err != nil {
		return err
	}
	defer s.releaseSnapshot(sn)
	s.metrics.scans.Inc()
	var scratch []netip.Prefix
	for _, seg := range sn.segs {
		if err := s.scanSealed(seg, q, &scratch, fn); err != nil {
			return err
		}
	}
	if sn.activePath != "" {
		return s.scanActive(sn, q, &scratch, fn, 0, ^uint64(0), false)
	}
	return nil
}

// scanSealed scans one sealed segment through its span index.
func (s *Store) scanSealed(seg *segment, q Query, scratch *[]netip.Prefix, fn func(Event) error) error {
	idx := seg.idx
	if !q.From.IsZero() && idx.maxNS < q.From.UnixNano() {
		return nil
	}
	if !q.To.IsZero() && idx.minNS >= q.To.UnixNano() {
		return nil
	}
	collID := noPeer
	if q.Collector != "" {
		id, ok := idx.collectorID(q.Collector)
		if !ok {
			return nil
		}
		collID = id
	}
	ords, all, ok := candidateOrdinals(idx, q)
	if !ok {
		return nil
	}
	if all && collID == noPeer && q.Kind == 0 && q.From.IsZero() && q.To.IsZero() {
		return s.scanSealedAll(seg, scratch, fn)
	}
	bytes := int64(0)
	emit := func(ord int) error {
		e, err := seg.event(ord)
		if err != nil {
			return err
		}
		bytes += frameHeaderLen + eventFixedLen + int64(len(e.ids)) + int64(len(e.payload))
		if !q.timeMatches(e.ns) {
			return nil
		}
		if q.Kind != 0 && e.kind != q.Kind {
			return nil
		}
		if collID != noPeer && e.coll != collID {
			return nil
		}
		return fn(makeEvent(e, idx.colls, idx.peers, idx.prefs, scratch, false))
	}
	if all {
		for ord := range idx.offsets {
			if err := emit(ord); err != nil {
				return err
			}
		}
	} else {
		for _, ord := range ords {
			if err := emit(int(ord)); err != nil {
				return err
			}
		}
	}
	s.metrics.scanBytes.Add(bytes)
	return nil
}

// scanSealedAll is the unfiltered hot path over one sealed segment: a
// straight walk of the offset table against the mapping, sized for the
// multi-GB/s sweeps lifespan analyses make over months of segments.
func (s *Store) scanSealedAll(seg *segment, scratch *[]netip.Prefix, fn func(Event) error) error {
	idx := seg.idx
	data := seg.data
	n := int64(len(data))
	for _, off32 := range idx.offsets {
		off := int64(off32)
		if off+frameHeaderLen > n {
			return fmt.Errorf("%w: %s: event offset beyond file", ErrCorrupt, seg.path)
		}
		end := off + frameHeaderLen + int64(le.Uint32(data[off:]))
		if data[off+4] != fkEvent || end > n {
			return fmt.Errorf("%w: %s: event frame invalid", ErrCorrupt, seg.path)
		}
		e, ok := decodeEventBody(data[off+frameHeaderLen : end])
		if !ok {
			return fmt.Errorf("%w: %s: event body invalid", ErrCorrupt, seg.path)
		}
		if err := fn(makeEvent(e, idx.colls, idx.peers, idx.prefs, scratch, false)); err != nil {
			return err
		}
	}
	s.metrics.scanBytes.Add(seg.size - segHeaderLen)
	return nil
}

// candidateOrdinals resolves the peer/prefix filters against the span
// index. all=true means every ordinal; ok=false means the segment cannot
// match.
func candidateOrdinals(idx *segIndex, q Query) (ords []uint32, all, ok bool) {
	hasPeer, hasPrefix := q.hasPeer(), q.Prefix.IsValid()
	if !hasPeer && !hasPrefix {
		return nil, true, true
	}
	peerID, prefixID := noPeer, noPrefix
	if hasPeer {
		id, found := idx.peerID(q.peerKey())
		if !found {
			return nil, false, false
		}
		peerID = id
	}
	if hasPrefix {
		id, found := idx.prefixID(q.Prefix)
		if !found {
			return nil, false, false
		}
		prefixID = id
	}
	var lists [][]uint32
	for _, pp := range idx.pairs {
		if hasPeer && pp.peer != peerID {
			continue
		}
		if hasPrefix {
			if pp.prefix != prefixID {
				continue
			}
		} else if pp.prefix == noPrefix && pp.peer == noPeer {
			// peer filter set but this is the no-peer posting slot
			continue
		}
		lists = append(lists, pp.ords)
	}
	if len(lists) == 0 {
		return nil, false, false
	}
	if len(lists) == 1 {
		return lists[0], false, true
	}
	// Merge, dedupe (an event with several prefixes posts once per pair).
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]uint32, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	out := merged[:0]
	for i, o := range merged {
		if i == 0 || o != merged[i-1] {
			out = append(out, o)
		}
	}
	return out, false, true
}

// scanActive sequentially scans the live segment file up to the size
// pinned in the snapshot, restricted to sequence numbers in [loSeq, hiSeq]
// and the query filters.
func (s *Store) scanActive(sn snapshot, q Query, scratch *[]netip.Prefix, fn func(Event) error, loSeq, hiSeq uint64, copyOut bool) error {
	f, err := os.Open(sn.activePath)
	if err != nil {
		return fmt.Errorf("eventstore: %w", err)
	}
	data := make([]byte, sn.activeSize)
	_, err = f.ReadAt(data, 0)
	f.Close()
	if err != nil {
		return fmt.Errorf("eventstore: read active segment: %w", err)
	}
	dicts := newSegDicts()
	var ferr error
	bytes := int64(0)
	stopped := false // deliberate early exit, not a torn frame
	good := scanFrames(data, func(kind byte, body []byte, off int64) bool {
		if kind != fkEvent {
			return dicts.addDictFrame(kind, body)
		}
		e, ok := decodeEventBody(body)
		if !ok || !dicts.validEvent(e) {
			return false
		}
		if e.seq < loSeq {
			return true
		}
		if e.seq > hiSeq {
			stopped = true
			return false
		}
		bytes += frameHeaderLen + int64(len(body))
		if !matchScanned(q, e, dicts) {
			return true
		}
		ferr = fn(makeEvent(e, dicts.colls, dicts.peers, dicts.prefs, scratch, copyOut))
		return ferr == nil
	})
	s.metrics.scanBytes.Add(bytes)
	if ferr != nil {
		return ferr
	}
	if !stopped && good < sn.activeSize {
		return fmt.Errorf("%w: active segment at offset %d", ErrCorrupt, good)
	}
	return nil
}

// matchScanned applies the query filters to a sequentially-scanned event.
func matchScanned(q Query, e rawEvent, d *segDicts) bool {
	if !q.timeMatches(e.ns) {
		return false
	}
	if q.Kind != 0 && e.kind != q.Kind {
		return false
	}
	if q.Collector != "" && d.colls[e.coll] != q.Collector {
		return false
	}
	if q.hasPeer() {
		if e.peer == noPeer || d.peers[e.peer] != q.peerKey() {
			return false
		}
	}
	if q.Prefix.IsValid() {
		found := false
		for i := 0; i < e.nPrefixes(); i++ {
			if d.prefs[e.prefixID(i)] == q.Prefix {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Replay streams the events with sequence numbers in (fromSeq, toSeq], in
// order — the half-open range a resume-from-sequence subscriber wants.
// Unlike Scan, delivered Events own their memory (payload and prefixes
// are copied) so they can be queued past the callback.
func (s *Store) Replay(fromSeq, toSeq uint64, fn func(Event) error) error {
	sn, err := s.snapshot()
	if err != nil {
		return err
	}
	defer s.releaseSnapshot(sn)
	s.metrics.scans.Inc()
	lo := fromSeq + 1
	var scratch []netip.Prefix
	for _, seg := range sn.segs {
		idx := seg.idx
		if idx.lastSeq < lo {
			continue
		}
		if idx.firstSeq > toSeq {
			return nil
		}
		startOrd := 0
		if lo > idx.firstSeq {
			startOrd = int(lo - idx.firstSeq)
		}
		endOrd := len(idx.offsets) - 1
		if toSeq < idx.lastSeq {
			endOrd = int(toSeq - idx.firstSeq)
		}
		bytes := int64(0)
		for ord := startOrd; ord <= endOrd; ord++ {
			e, err := seg.event(ord)
			if err != nil {
				return err
			}
			bytes += frameHeaderLen + eventFixedLen + int64(len(e.ids)) + int64(len(e.payload))
			if err := fn(makeEvent(e, idx.colls, idx.peers, idx.prefs, &scratch, true)); err != nil {
				return err
			}
		}
		s.metrics.scanBytes.Add(bytes)
	}
	if sn.activePath != "" {
		return s.scanActive(sn, Query{}, &scratch, fn, lo, toSeq, true)
	}
	return nil
}
