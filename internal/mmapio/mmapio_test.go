package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenAndPin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	want := bytes.Repeat([]byte("zombie"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data, want) {
		t.Fatalf("mapped bytes differ: %d vs %d", len(m.Data), len(want))
	}
	// A borrower pin keeps the bytes valid past the opener's release.
	m.Acquire()
	slice := m.Data[6:12]
	m.Release() // opener done
	if string(slice) != "zombie" {
		t.Fatalf("pinned slice corrupted: %q", slice)
	}
	m.Release() // borrower done; unmaps
}

func TestOpenEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Data))
	}
	m.Release()
}

func TestOpenDirectoryFails(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open(dir) should fail")
	}
}

func TestOverReleasePanics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	m.Release()
}
