//go:build !unix

package mmapio

import (
	"errors"
	"os"
)

// rawMap always fails on platforms without unix mmap; MapFile falls back
// to reading the file into the heap.
func rawMap(*os.File, int64) ([]byte, func(), error) {
	return nil, nil, errors.New("mmapio: mmap unsupported")
}
