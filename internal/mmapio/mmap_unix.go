//go:build unix

package mmapio

import (
	"os"
	"syscall"
)

// rawMap mmaps [0, size) of f read-only; the returned func unmaps.
func rawMap(f *os.File, size int64) ([]byte, func(), error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
