// Package mmapio provides refcount-pinned read-only file mappings — the
// zero-copy substrate shared by the event store's sealed-segment scans and
// the archive ingest path. A Mapping is an mmap of a whole file on unix
// (with a plain-read heap fallback elsewhere, or when mmap fails), plus a
// reference count that pins the bytes while borrowers hold slices into
// them: decoded records may alias Mapping.Data directly, and the unmap is
// deferred until the last holder releases.
package mmapio

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// Mapping is a refcounted read-only view of a file. The opener holds the
// first reference; every borrower that keeps slices aliasing Data past the
// opener's lifetime must Acquire/Release its own.
type Mapping struct {
	// Data is the file's bytes. Slices of it remain valid until the last
	// reference is released; after that, touching them faults (mmap) or
	// merely wastes heap (fallback). Treat it as strictly read-only.
	Data []byte

	refs   atomic.Int32
	unmap  func()
	mapped bool
}

// Acquire adds a reference, pinning Data for an additional holder.
func (m *Mapping) Acquire() { m.refs.Add(1) }

// Release drops a reference; the last release unmaps. Releasing more
// often than acquiring panics, as a refcount bug would otherwise surface
// as a delayed segfault in whoever still aliases the mapping.
func (m *Mapping) Release() {
	n := m.refs.Add(-1)
	if n < 0 {
		panic("mmapio: Release without matching Acquire")
	}
	if n == 0 && m.unmap != nil {
		m.unmap()
		m.unmap = nil
	}
}

// Mapped reports whether the bytes are a real mmap (false: heap fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// MapFile maps [0, size) of f read-only. The file descriptor is not
// retained (an mmap outlives its fd; the fallback copies), so the caller
// may close f immediately. A failed mmap degrades to the heap copy.
func MapFile(f *os.File, size int64) (*Mapping, error) {
	if size == 0 {
		m := &Mapping{}
		m.refs.Store(1)
		return m, nil
	}
	if data, unmap, err := rawMap(f, size); err == nil {
		m := &Mapping{Data: data, unmap: unmap, mapped: true}
		m.refs.Store(1)
		return m, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, err
	}
	m := &Mapping{Data: data}
	m.refs.Store(1)
	return m, nil
}

// Open maps an entire file by path.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("mmapio: %s is not a regular file", path)
	}
	return MapFile(f, fi.Size())
}
