package archive

import (
	"bytes"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zombiescope/internal/bgp"
	"zombiescope/internal/collector"
	"zombiescope/internal/mrt"
	"zombiescope/internal/netsim"
)

var t0 = time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)

func feed(t *testing.T, f *collector.Fleet, hours int) netsim.Session {
	t.Helper()
	sess := netsim.Session{
		Collector: "rrc25",
		PeerAS:    200,
		PeerIP:    netip.MustParseAddr("2001:db8:feed::1"),
		AFI:       bgp.AFIIPv6,
	}
	p := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
	attrs := netsim.RouteAttrs{Path: bgp.NewASPath(200, 8298, 210312)}
	for h := 0; h < hours; h++ {
		at := t0.Add(time.Duration(h) * time.Hour)
		f.PeerAnnounce(at, sess, p, attrs)
		f.PeerWithdraw(at.Add(15*time.Minute), sess, p)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := collector.NewFleet()
	feed(t, f, 3)
	f.SnapshotRIBs(t0.Add(8 * time.Hour))
	set := &Set{Updates: f.UpdatesData(), Dumps: f.DumpData()}
	if err := Write(dir, set); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Updates["rrc25"], set.Updates["rrc25"]) {
		t.Error("updates differ after round trip")
	}
	if !bytes.Equal(got.Dumps["rrc25"], set.Dumps["rrc25"]) {
		t.Error("dumps differ after round trip")
	}
}

func TestRotatedSegments(t *testing.T) {
	f := collector.NewFleet()
	c := f.Collector("rrc25")
	c.SetRotatePeriod(time.Hour)
	feed(t, f, 4)
	segs := c.Segments()
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4 (one per hour)", len(segs))
	}
	// Names follow the RIS convention and sort chronologically.
	if segs[0].Name != "updates.20240610.1200.mrt" {
		t.Errorf("first segment name %q", segs[0].Name)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Name <= segs[i-1].Name {
			t.Errorf("segment names not sorted: %q after %q", segs[i].Name, segs[i-1].Name)
		}
	}
	// Each segment is independently a valid MRT stream.
	total := 0
	for _, s := range segs {
		recs, err := mrt.ReadAll(bytes.NewReader(s.Data))
		if err != nil {
			t.Fatalf("segment %s: %v", s.Name, err)
		}
		total += len(recs)
	}
	if total != 8 {
		t.Errorf("records across segments = %d, want 8", total)
	}
}

func TestUpdatesDataEqualsSegmentConcatenation(t *testing.T) {
	f1 := collector.NewFleet()
	f1.Collector("rrc25").SetRotatePeriod(time.Hour)
	feed(t, f1, 4)
	f2 := collector.NewFleet()
	feed(t, f2, 4)
	if !bytes.Equal(f1.Collector("rrc25").UpdatesData(), f2.Collector("rrc25").UpdatesData()) {
		t.Error("rotated and unrotated archives differ as streams")
	}
}

func TestWriteFleetAndLoadRotated(t *testing.T) {
	dir := t.TempDir()
	f := collector.NewFleet()
	c := f.Collector("rrc25")
	c.SetRotatePeriod(time.Hour)
	feed(t, f, 4)
	f.SnapshotRIBs(t0.Add(8 * time.Hour))
	if err := WriteFleet(dir, f); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(filepath.Join(dir, "rrc25"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 rotated update files + bview.
	if len(files) != 5 {
		names := make([]string, 0, len(files))
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Fatalf("files = %v, want 4 updates + bview", names)
	}
	set, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mrt.ReadAll(bytes.NewReader(set.Updates["rrc25"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Errorf("loaded %d records, want 8", len(recs))
	}
	// Timestamps in order across segment boundaries.
	for i := 1; i < len(recs); i++ {
		if recs[i].RecordTime().Before(recs[i-1].RecordTime()) {
			t.Error("records out of order after concatenation")
		}
	}
	if len(set.Dumps["rrc25"]) == 0 {
		t.Error("dump stream missing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty archive dir accepted")
	}
	if _, err := Load("/nonexistent/archive"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestOpenUpdatesStreamsRotatedFiles(t *testing.T) {
	dir := t.TempDir()
	f := collector.NewFleet()
	f.Collector("rrc25").SetRotatePeriod(time.Hour)
	feed(t, f, 4)
	if err := WriteFleet(dir, f); err != nil {
		t.Fatal(err)
	}
	set, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	names, err := Collectors(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "rrc25" {
		t.Fatalf("Collectors = %v, want [rrc25]", names)
	}

	rc, err := OpenUpdates(dir, "rrc25")
	if err != nil {
		t.Fatal(err)
	}
	// Read through a tiny buffer so every file-boundary transition inside
	// fileChain.Read is exercised.
	var got bytes.Buffer
	buf := make([]byte, 7)
	for {
		n, err := rc.Read(buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), set.Updates["rrc25"]) {
		t.Fatalf("streamed %d bytes differ from Load's %d-byte stream",
			got.Len(), len(set.Updates["rrc25"]))
	}
	// The concatenated stream decodes as valid MRT.
	recs, err := mrt.ReadAll(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Errorf("streamed %d records, want 8", len(recs))
	}
}

func TestOpenUpdatesCloseMidStream(t *testing.T) {
	dir := t.TempDir()
	f := collector.NewFleet()
	f.Collector("rrc25").SetRotatePeriod(time.Hour)
	feed(t, f, 4)
	if err := WriteFleet(dir, f); err != nil {
		t.Fatal(err)
	}
	rc, err := OpenUpdates(dir, "rrc25")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Read(make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenUpdates(dir, "rrc99"); err == nil {
		t.Error("missing collector accepted")
	}
}
