package archive

import (
	"fmt"
	"path/filepath"

	"zombiescope/internal/mmapio"
)

// MappedSet is a zero-copy view of an archive directory: each collector's
// rotated update files stay separate mmap segments in lexical
// (= chronological) order instead of being concatenated into one heap
// buffer. Because MRT records are self-delimiting and never span files,
// a collector's segment list is one logical stream — pipeline.FoldStreams
// consumes it directly with per-file record-aligned chunking.
//
// The byte slices alias refcount-pinned mappings (internal/mmapio); they
// are valid until Close, and strictly read-only. On platforms without
// mmap (or when mapping fails) the segments are plain heap reads and the
// semantics are identical.
type MappedSet struct {
	// Updates holds each collector's update files as ordered segments.
	Updates map[string][][]byte
	// Dumps holds each collector's bview.mrt snapshot, when present.
	Dumps map[string][]byte

	maps []*mmapio.Mapping
}

// OpenMapped maps an archive directory. The caller must Close the set
// when no decoded record borrows its bytes anymore (borrow-mode decode
// aliases record bodies straight into the mappings).
func OpenMapped(dir string) (*MappedSet, error) {
	names, err := Collectors(dir)
	if err != nil {
		return nil, err
	}
	set := &MappedSet{
		Updates: make(map[string][][]byte),
		Dumps:   make(map[string][]byte),
	}
	for _, name := range names {
		sub := filepath.Join(dir, name)
		files, err := updateFiles(sub)
		if err != nil {
			set.Close()
			return nil, err
		}
		if dump := filepath.Join(sub, "bview.mrt"); fileExists(dump) {
			m, err := mmapio.Open(dump)
			if err != nil {
				set.Close()
				return nil, fmt.Errorf("archive: %w", err)
			}
			set.maps = append(set.maps, m)
			set.Dumps[name] = m.Data
		}
		var segs [][]byte
		for _, uf := range files {
			m, err := mmapio.Open(uf)
			if err != nil {
				set.Close()
				return nil, fmt.Errorf("archive: %w", err)
			}
			set.maps = append(set.maps, m)
			if len(m.Data) > 0 {
				segs = append(segs, m.Data)
			}
		}
		if len(segs) > 0 {
			set.Updates[name] = segs
		}
	}
	if len(set.Updates) == 0 {
		set.Close()
		return nil, fmt.Errorf("archive: no <collector>/updates*.mrt files under %s", dir)
	}
	return set, nil
}

// Mapped reports whether at least one segment is a real mmap (false means
// every segment fell back to a heap read).
func (s *MappedSet) Mapped() bool {
	for _, m := range s.maps {
		if m.Mapped() {
			return true
		}
	}
	return false
}

// Close releases every mapping. Slices handed out before Close must not
// be touched afterwards.
func (s *MappedSet) Close() {
	for _, m := range s.maps {
		m.Release()
	}
	s.maps = nil
}

// Materialize concatenates the mapped segments into the in-memory Set
// form, copying the bytes so they survive Close. It exists for
// compatibility bridges and tests; hot paths should consume Updates
// directly.
func (s *MappedSet) Materialize() *Set {
	out := &Set{
		Updates: make(map[string][]byte, len(s.Updates)),
		Dumps:   make(map[string][]byte, len(s.Dumps)),
	}
	for name, segs := range s.Updates {
		total := 0
		for _, seg := range segs {
			total += len(seg)
		}
		buf := make([]byte, 0, total)
		for _, seg := range segs {
			buf = append(buf, seg...)
		}
		out.Updates[name] = buf
	}
	for name, d := range s.Dumps {
		out.Dumps[name] = append([]byte(nil), d...)
	}
	return out
}
