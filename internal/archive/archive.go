// Package archive reads and writes the on-disk MRT archive layout the
// tools share, mirroring a RIS mirror directory:
//
//	<dir>/<collector>/updates.mrt                  (single-file form)
//	<dir>/<collector>/updates.YYYYMMDD.HHMM.mrt    (rotated form)
//	<dir>/<collector>/bview.mrt                    (RIB dump snapshots)
//
// Because MRT records are self-delimiting, the rotated update files of a
// collector concatenate (in name order) into one valid stream, which is
// how Load returns them.
package archive

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zombiescope/internal/collector"
)

// Set is an in-memory archive: per-collector update streams and RIB dump
// streams.
type Set struct {
	Updates map[string][]byte
	Dumps   map[string][]byte
}

// Load reads an archive directory into memory. Collectors are
// subdirectories; all their updates*.mrt files are concatenated in
// lexical (= chronological) order into one exactly-sized buffer per
// collector (sizes are summed up front, so concatenation never
// reallocates or holds two copies). Missing bview.mrt files are fine.
//
// Load materializes every stream, so it is bounded by available memory —
// roughly the archive's on-disk size. Month-scale archives should be
// streamed instead: OpenUpdates reads a collector's rotated files
// sequentially without loading them, and the zombied daemon's durable
// event store (-store-dir) replaces bulk reloads entirely.
func Load(dir string) (*Set, error) {
	names, err := Collectors(dir)
	if err != nil {
		return nil, err
	}
	set := &Set{
		Updates: make(map[string][]byte),
		Dumps:   make(map[string][]byte),
	}
	for _, name := range names {
		sub := filepath.Join(dir, name)
		files, err := updateFiles(sub)
		if err != nil {
			return nil, err
		}
		if dump := filepath.Join(sub, "bview.mrt"); fileExists(dump) {
			b, err := os.ReadFile(dump)
			if err != nil {
				return nil, fmt.Errorf("archive: %w", err)
			}
			set.Dumps[name] = b
		}
		total := int64(0)
		sizes := make([]int64, len(files))
		for i, uf := range files {
			fi, err := os.Stat(uf)
			if err != nil {
				return nil, fmt.Errorf("archive: %w", err)
			}
			sizes[i] = fi.Size()
			total += fi.Size()
		}
		if total == 0 {
			continue
		}
		stream := make([]byte, total)
		off := int64(0)
		for i, uf := range files {
			f, err := os.Open(uf)
			if err != nil {
				return nil, fmt.Errorf("archive: %w", err)
			}
			_, err = io.ReadFull(f, stream[off:off+sizes[i]])
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("archive: reading %s: %w", uf, err)
			}
			off += sizes[i]
		}
		set.Updates[name] = stream
	}
	if len(set.Updates) == 0 {
		return nil, fmt.Errorf("archive: no <collector>/updates*.mrt files under %s", dir)
	}
	return set, nil
}

// Collectors lists the collector subdirectories of an archive, sorted.
func Collectors(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// updateFiles returns the collector's update files as full paths in
// lexical (= chronological) order.
func updateFiles(sub string) ([]string, error) {
	files, err := os.ReadDir(sub)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var out []string
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		if strings.HasPrefix(f.Name(), "updates") && strings.HasSuffix(f.Name(), ".mrt") {
			out = append(out, filepath.Join(sub, f.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir()
}

// OpenUpdates streams one collector's rotated update files concatenated
// in lexical order, opening each file only when the previous one is
// exhausted — constant memory no matter how large the archive. Because
// MRT records are self-delimiting, the returned reader is one valid MRT
// stream (feed it straight to mrt.NewReader). Close releases the file
// currently open.
func OpenUpdates(dir, name string) (io.ReadCloser, error) {
	files, err := updateFiles(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("archive: no update files for collector %s under %s", name, dir)
	}
	return &fileChain{paths: files}, nil
}

// fileChain is a lazy io.ReadCloser over a sequence of files.
type fileChain struct {
	paths []string
	next  int
	cur   *os.File
}

func (c *fileChain) Read(p []byte) (int, error) {
	for {
		if c.cur == nil {
			if c.next >= len(c.paths) {
				return 0, io.EOF
			}
			f, err := os.Open(c.paths[c.next])
			if err != nil {
				return 0, fmt.Errorf("archive: %w", err)
			}
			c.cur = f
			c.next++
		}
		n, err := c.cur.Read(p)
		if err == io.EOF {
			c.cur.Close()
			c.cur = nil
			if n > 0 {
				return n, nil
			}
			continue // next file
		}
		return n, err
	}
}

func (c *fileChain) Close() error {
	if c.cur == nil {
		return nil
	}
	err := c.cur.Close()
	c.cur = nil
	return err
}

// Write stores an in-memory archive in the single-file layout.
func Write(dir string, set *Set) error {
	for name, data := range set.Updates {
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "updates.mrt"), data, 0o644); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	for name, data := range set.Dumps {
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "bview.mrt"), data, 0o644); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	return nil
}

// WriteFleet stores a collector fleet's archives, using the rotated
// update-file layout when the collectors rotated.
func WriteFleet(dir string, f *collector.Fleet) error {
	for _, name := range f.Names() {
		c := f.Collector(name)
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		for _, seg := range c.Segments() {
			if err := os.WriteFile(filepath.Join(sub, seg.Name), seg.Data, 0o644); err != nil {
				return fmt.Errorf("archive: %w", err)
			}
		}
		if dump := c.DumpData(); len(dump) > 0 {
			if err := os.WriteFile(filepath.Join(sub, "bview.mrt"), dump, 0o644); err != nil {
				return fmt.Errorf("archive: %w", err)
			}
		}
	}
	return nil
}
