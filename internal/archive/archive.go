// Package archive reads and writes the on-disk MRT archive layout the
// tools share, mirroring a RIS mirror directory:
//
//	<dir>/<collector>/updates.mrt                  (single-file form)
//	<dir>/<collector>/updates.YYYYMMDD.HHMM.mrt    (rotated form)
//	<dir>/<collector>/bview.mrt                    (RIB dump snapshots)
//
// Because MRT records are self-delimiting, the rotated update files of a
// collector concatenate (in name order) into one valid stream, which is
// how Load returns them.
package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zombiescope/internal/collector"
)

// Set is an in-memory archive: per-collector update streams and RIB dump
// streams.
type Set struct {
	Updates map[string][]byte
	Dumps   map[string][]byte
}

// Load reads an archive directory. Collectors are subdirectories; all
// their updates*.mrt files are concatenated in lexical (= chronological)
// order. Missing bview.mrt files are fine.
func Load(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	set := &Set{
		Updates: make(map[string][]byte),
		Dumps:   make(map[string][]byte),
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		sub := filepath.Join(dir, name)
		files, err := os.ReadDir(sub)
		if err != nil {
			return nil, fmt.Errorf("archive: %w", err)
		}
		var updateFiles []string
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			switch {
			case strings.HasPrefix(f.Name(), "updates") && strings.HasSuffix(f.Name(), ".mrt"):
				updateFiles = append(updateFiles, f.Name())
			case f.Name() == "bview.mrt":
				b, err := os.ReadFile(filepath.Join(sub, f.Name()))
				if err != nil {
					return nil, fmt.Errorf("archive: %w", err)
				}
				set.Dumps[name] = b
			}
		}
		sort.Strings(updateFiles)
		var stream []byte
		for _, uf := range updateFiles {
			b, err := os.ReadFile(filepath.Join(sub, uf))
			if err != nil {
				return nil, fmt.Errorf("archive: %w", err)
			}
			stream = append(stream, b...)
		}
		if len(stream) > 0 {
			set.Updates[name] = stream
		}
	}
	if len(set.Updates) == 0 {
		return nil, fmt.Errorf("archive: no <collector>/updates*.mrt files under %s", dir)
	}
	return set, nil
}

// Write stores an in-memory archive in the single-file layout.
func Write(dir string, set *Set) error {
	for name, data := range set.Updates {
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "updates.mrt"), data, 0o644); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	for name, data := range set.Dumps {
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "bview.mrt"), data, 0o644); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
	}
	return nil
}

// WriteFleet stores a collector fleet's archives, using the rotated
// update-file layout when the collectors rotated.
func WriteFleet(dir string, f *collector.Fleet) error {
	for _, name := range f.Names() {
		c := f.Collector(name)
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("archive: %w", err)
		}
		for _, seg := range c.Segments() {
			if err := os.WriteFile(filepath.Join(sub, seg.Name), seg.Data, 0o644); err != nil {
				return fmt.Errorf("archive: %w", err)
			}
		}
		if dump := c.DumpData(); len(dump) > 0 {
			if err := os.WriteFile(filepath.Join(sub, "bview.mrt"), dump, 0o644); err != nil {
				return fmt.Errorf("archive: %w", err)
			}
		}
	}
	return nil
}
