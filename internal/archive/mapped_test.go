package archive

import (
	"bytes"
	"testing"
	"time"

	"zombiescope/internal/collector"
)

func TestOpenMappedMatchesLoad(t *testing.T) {
	dir := t.TempDir()
	f := collector.NewFleet()
	f.Collector("rrc25").SetRotatePeriod(time.Hour)
	feed(t, f, 4)
	f.SnapshotRIBs(t0.Add(8 * time.Hour))
	if err := WriteFleet(dir, f); err != nil {
		t.Fatal(err)
	}

	set, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	segs := ms.Updates["rrc25"]
	if len(segs) != 4 {
		t.Fatalf("mapped segments = %d, want 4 rotated files", len(segs))
	}
	var concat bytes.Buffer
	for _, seg := range segs {
		concat.Write(seg)
	}
	if !bytes.Equal(concat.Bytes(), set.Updates["rrc25"]) {
		t.Error("mapped segments do not concatenate to the loaded stream")
	}
	if !bytes.Equal(ms.Dumps["rrc25"], set.Dumps["rrc25"]) {
		t.Error("mapped dump differs from loaded dump")
	}

	mat := ms.Materialize()
	if !bytes.Equal(mat.Updates["rrc25"], set.Updates["rrc25"]) {
		t.Error("Materialize differs from Load")
	}
	if !bytes.Equal(mat.Dumps["rrc25"], set.Dumps["rrc25"]) {
		t.Error("Materialize dump differs from Load")
	}
	// Materialized copies must survive Close.
	ms.Close()
	if len(mat.Updates["rrc25"]) == 0 {
		t.Error("materialized copy lost after Close")
	}
}

func TestOpenMappedErrors(t *testing.T) {
	if _, err := OpenMapped(t.TempDir()); err == nil {
		t.Error("empty archive dir accepted")
	}
	if _, err := OpenMapped("/nonexistent/archive"); err == nil {
		t.Error("missing dir accepted")
	}
}
