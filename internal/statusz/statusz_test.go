package statusz

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
)

func sampleStatus() Status {
	return Status{
		Server:        "zombied/1",
		GoVersion:     "go1.22",
		NumCPU:        4,
		UptimeSeconds: 12.5,
		Ready:         true,
		HeadSeq:       42,
		Subscribers:   2,
		Shards:        1,
		Counters:      map[string]int64{"records_in": 100, "events_out": 90, "bytes_written": 4096},
		Stages: map[string]obs.HistogramSummary{
			"publish": {Count: 100, Sum: 0.01, P50: 5e-5, P99: 2e-4, P999: 1e-3},
		},
		Sessions: []livefeed.SessionInfo{
			{ID: 1, Policy: "drop-oldest", Lag: 3, Queue: 3, Cap: 64, Delivered: 87},
			{ID: 2, Policy: "block", Lag: 10, Queue: 5, Cap: 64, Delivered: 80},
		},
		Store: &StoreStatus{Dir: "/tmp/store", FirstSeq: 1, LastSeq: 42, Segments: 2, Bytes: 1 << 20},
	}
}

func TestHandlerJSON(t *testing.T) {
	h := Handler(sampleStatus)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("response is not valid Status JSON: %v", err)
	}
	if st.HeadSeq != 42 || !st.Ready || len(st.Sessions) != 2 {
		t.Errorf("round-trip lost fields: %+v", st)
	}
	if st.UnixNanos == 0 {
		t.Error("handler did not stamp UnixNanos")
	}
}

func TestHandlerHTML(t *testing.T) {
	h := Handler(sampleStatus)
	rec := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/statusz", nil)
	r.Header.Set("Accept", "text/html")
	h.ServeHTTP(rec, r)
	body := rec.Body.String()
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Fatalf("Content-Type = %q", rec.Header().Get("Content-Type"))
	}
	for _, want := range []string{"zombied/1", "drop-oldest", "publish", "/tmp/store"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML page missing %q", want)
		}
	}
	// ?format=html works without an Accept header (curl usage).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz?format=html", nil))
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Errorf("format=html ignored")
	}
}

func TestRender(t *testing.T) {
	cur := sampleStatus()
	cur.UnixNanos = 2e9
	prev := sampleStatus()
	prev.UnixNanos = 1e9
	prev.Counters = map[string]int64{"records_in": 50, "events_out": 40, "bytes_written": 0}
	var sb strings.Builder
	Render(&sb, &prev, &cur, 0)
	out := sb.String()
	// Rates from the counter deltas over the 1s stamp distance.
	if !strings.Contains(out, "in 50/s") || !strings.Contains(out, "out 50/s") {
		t.Errorf("rates wrong:\n%s", out)
	}
	if !strings.Contains(out, "bytes 4096/s") {
		t.Errorf("byte rate missing:\n%s", out)
	}
	// Sessions sorted by lag descending: session 2 (lag 10) first.
	i1, i2 := strings.Index(out, "\n2      block"), strings.Index(out, "\n1      drop-oldest")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("sessions not sorted by lag:\n%s", out)
	}
	if !strings.Contains(out, "store 1..42") {
		t.Errorf("store line missing:\n%s", out)
	}

	// Without a baseline, rates render as "-"; top bounds the rows.
	sb.Reset()
	Render(&sb, nil, &cur, 1)
	out = sb.String()
	if !strings.Contains(out, "in -") {
		t.Errorf("nil-baseline rates should be '-':\n%s", out)
	}
	if strings.Contains(out, "drop-oldest") {
		t.Errorf("top=1 should keep only the laggiest session:\n%s", out)
	}
}
