// Package statusz assembles and serves a daemon's single-page
// introspection snapshot: head sequence, per-stage latency summaries,
// per-subscriber session telemetry, store watermarks, and Go runtime
// health in one JSON document. The /statusz endpoint answers the
// question /metrics cannot — "what is this daemon doing right now" —
// without a scrape pipeline in between, and the zombietop dashboard is a
// terminal renderer over the same document.
package statusz

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
)

// Status is one point-in-time snapshot of a zombied process. Field order
// here is presentation order in the HTML view; the JSON shape is the
// contract the zombietop dashboard and the CI smoke golden pin.
type Status struct {
	Server        string  `json:"server"`
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`

	HeadSeq       uint64 `json:"head_seq"`
	PendingChecks int    `json:"pending_checks"`
	Subscribers   int    `json:"subscribers"`
	Shards        int    `json:"shards"`

	// Counters is the broker's flat snapshot (records in/out, drops,
	// kicks, alerts, bytes written).
	Counters map[string]int64 `json:"counters"`

	// Stages summarises the livefeed latency histograms (publish, detect,
	// flush, e2e); PipelineStages the batch pipeline's (decode, build,
	// merge, detect).
	Stages         map[string]obs.HistogramSummary `json:"stages"`
	PipelineStages map[string]obs.HistogramSummary `json:"pipeline_stages"`

	Sessions []livefeed.SessionInfo `json:"sessions"`

	Store *StoreStatus `json:"store,omitempty"`

	Runtime obs.RuntimeStats `json:"runtime"`

	// UnixNanos is the wall-clock stamp of this snapshot; consumers
	// derive rates from counter deltas over stamp deltas.
	UnixNanos int64 `json:"unix_nanos"`
}

// StoreStatus is the durable event store's corner of the page.
type StoreStatus struct {
	Dir      string `json:"dir"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
}

// Handler serves the status built by build, as indented JSON by default
// and as a human-readable HTML page when the client asks for text/html
// or ?format=html. The UnixNanos stamp is filled in here so every
// builder gets rate-ready snapshots for free.
func Handler(build func() Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := build()
		st.UnixNanos = time.Now().UnixNano()
		if r.URL.Query().Get("format") == "html" ||
			strings.Contains(r.Header.Get("Accept"), "text/html") {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			htmlTmpl.Execute(w, &st)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&st)
	})
}

var htmlTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"us": func(s float64) string { return fmt.Sprintf("%.1fµs", s*1e6) },
}).Parse(`<!doctype html>
<html><head><title>{{.Server}} statusz</title><style>
body{font-family:monospace;margin:2em}table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #999;padding:2px 8px;text-align:right}th{background:#eee}
td:first-child,th:first-child{text-align:left}
</style></head><body>
<h1>{{.Server}}</h1>
<p>{{.GoVersion}}, {{.NumCPU}} CPU, up {{printf "%.0f" .UptimeSeconds}}s,
ready={{.Ready}}, head={{.HeadSeq}}, pending_checks={{.PendingChecks}},
subscribers={{.Subscribers}}, shards={{.Shards}}, goroutines={{.Runtime.Goroutines}}</p>
<h2>Stages</h2>
<table><tr><th>stage</th><th>count</th><th>p50</th><th>p99</th><th>p99.9</th></tr>
{{range $name, $s := .Stages}}<tr><td>{{$name}}</td><td>{{$s.Count}}</td><td>{{us $s.P50}}</td><td>{{us $s.P99}}</td><td>{{us $s.P999}}</td></tr>
{{end}}</table>
<h2>Sessions</h2>
<table><tr><th>id</th><th>policy</th><th>lag</th><th>queue</th><th>delivered</th><th>bytes</th><th>drops</th></tr>
{{range .Sessions}}<tr><td>{{.ID}}</td><td>{{.Policy}}</td><td>{{.Lag}}</td><td>{{.Queue}}/{{.Cap}}</td><td>{{.Delivered}}</td><td>{{.Bytes}}</td><td>{{.Drops}}</td></tr>
{{end}}</table>
{{with .Store}}<h2>Store</h2>
<p>{{.Dir}}: seqs {{.FirstSeq}}..{{.LastSeq}}, {{.Segments}} segments, {{.Bytes}} bytes</p>{{end}}
</body></html>
`))

// Render writes a terminal view of cur to w: one header block, a stage
// table, and the top sessions by lag. prev, when non-nil, supplies the
// baseline for rate columns (events/s, bytes/s) from counter deltas over
// the snapshots' UnixNanos distance. top bounds the session rows
// (0 = all). This is zombietop's frame renderer, kept here so the
// dashboard binary stays a fetch-decode-clear-render loop.
func Render(w io.Writer, prev, cur *Status, top int) {
	dt := 0.0
	if prev != nil && cur.UnixNanos > prev.UnixNanos {
		dt = float64(cur.UnixNanos-prev.UnixNanos) / 1e9
	}
	rate := func(key string) string {
		if dt <= 0 || prev == nil {
			return "-"
		}
		d := cur.Counters[key] - prev.Counters[key]
		return fmt.Sprintf("%.0f/s", float64(d)/dt)
	}
	fmt.Fprintf(w, "%s  up %.0fs  head %d  subs %d  shards %d  pending %d  goroutines %d\n",
		cur.Server, cur.UptimeSeconds, cur.HeadSeq, cur.Subscribers, cur.Shards,
		cur.PendingChecks, cur.Runtime.Goroutines)
	fmt.Fprintf(w, "in %s  out %s  bytes %s  drops %s  kicks %s  alerts %s  heap %dM\n",
		rate("records_in"), rate("events_out"), rate("bytes_written"),
		rate("drops_drop_oldest"), rate("kicks"), rate("alerts"),
		cur.Runtime.HeapLiveBytes>>20)
	if cur.Store != nil {
		fmt.Fprintf(w, "store %d..%d  %d segs  %dM\n",
			cur.Store.FirstSeq, cur.Store.LastSeq, cur.Store.Segments, cur.Store.Bytes>>20)
	}

	fmt.Fprintf(w, "\n%-10s %10s %12s %12s %12s\n", "STAGE", "COUNT", "P50", "P99", "P99.9")
	names := make([]string, 0, len(cur.Stages))
	for name := range cur.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := cur.Stages[name]
		fmt.Fprintf(w, "%-10s %10d %12s %12s %12s\n",
			name, s.Count, fmtSeconds(s.P50), fmtSeconds(s.P99), fmtSeconds(s.P999))
	}

	sessions := append([]livefeed.SessionInfo(nil), cur.Sessions...)
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Lag > sessions[j].Lag })
	if top > 0 && len(sessions) > top {
		sessions = sessions[:top]
	}
	fmt.Fprintf(w, "\n%-6s %-13s %8s %9s %10s %10s %7s %8s\n",
		"SESS", "POLICY", "LAG", "QUEUE", "DELIVERED", "BYTES", "DROPS", "STALL")
	for _, s := range sessions {
		fmt.Fprintf(w, "%-6d %-13s %8d %4d/%-4d %10d %10d %7d %7.1fs\n",
			s.ID, s.Policy, s.Lag, s.Queue, s.Cap, s.Delivered, s.Bytes, s.Drops, s.StallSeconds)
	}
}

// fmtSeconds renders a latency with a unit that keeps 3 significant
// digits readable from nanoseconds to seconds.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
