// Package chaos is a deterministic, seed-driven fault-injection harness
// for the streaming path. It wraps net.Conn / net.Listener (and plain
// io.Reader for MRT replay) with a scripted schedule of transport
// faults — latency spikes, short reads and fragmented writes, byte
// corruption, mid-frame connection resets, and stalls — the flaky-
// session and stuck-RIB conditions the paper studies, applied to our
// own wire instead of a router's.
//
// Everything is derived from a single seed: the Plan's seed and a
// connection counter feed a PCG stream per (connection, direction), and
// the resulting schedule is a fixed list of fault points keyed on byte
// offsets of that direction's stream. Because the bytes a deterministic
// replay produces are themselves deterministic, the same seed yields
// the same schedule and the same byte gets corrupted, the same frame is
// cut by a reset, the same write stalls. A failing soak seed therefore
// replays: rerun the test with the seed it printed.
//
// What is NOT deterministic is wall-clock interleaving (TCP segmenting,
// goroutine scheduling), which the invariants checked by the soak suite
// are explicitly independent of.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault enumerates the injected fault kinds.
type Fault uint8

const (
	// FaultLatency delays an operation by a bounded, schedule-chosen
	// duration — collector feed jitter.
	FaultLatency Fault = iota
	// FaultShortOp truncates a read (or fragments a write) to a few
	// bytes, forcing partial-frame handling on both sides.
	FaultShortOp
	// FaultCorrupt XORs one byte of the stream with a nonzero mask —
	// the silent bit-flip the frame checksum exists to catch.
	FaultCorrupt
	// FaultReset closes the connection at an exact byte offset,
	// usually mid-frame — the session reset the paper's zombies
	// survive.
	FaultReset
	// FaultStall stops moving bytes while keeping the connection open —
	// the transport-layer analogue of a stuck RIB. Released when the
	// connection closes or the plan's StallTimeout expires.
	FaultStall

	numFaults
)

func (f Fault) String() string {
	switch f {
	case FaultLatency:
		return "latency"
	case FaultShortOp:
		return "short-op"
	case FaultCorrupt:
		return "corrupt"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Faults returns every fault kind, for coverage assertions.
func Faults() []Fault {
	out := make([]Fault, 0, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		out = append(out, f)
	}
	return out
}

// ErrInjected is returned by operations cut off by a FaultReset.
var ErrInjected = errors.New("chaos: injected connection reset")

// Plan parameterizes an Injector. The zero value of every field but
// Seed is a usable default.
type Plan struct {
	// Seed derives every schedule. Same seed, same plan, same faults.
	Seed uint64
	// MeanGap is the average number of stream bytes between scheduled
	// fault points on one direction of one connection. Default 4096.
	MeanGap int
	// Horizon caps how many fault points one direction's schedule
	// holds; after the schedule is exhausted the connection behaves
	// normally, so a harnessed system that keeps reconnecting always
	// has a path to progress. Default 16.
	Horizon int
	// MaxLatency bounds FaultLatency delays. Default 2ms.
	MaxLatency time.Duration
	// StallTimeout force-releases a FaultStall, bounding how long a
	// stall can hold an operation that nobody aborts. Default 1s.
	StallTimeout time.Duration
	// MaxConns stops injecting after this many wrapped connections
	// (later ones pass through untouched) — a chaos budget that
	// guarantees eventual success for reconnecting clients. 0 means
	// unlimited.
	MaxConns int
	// Disable masks fault kinds out of generated schedules.
	Disable []Fault
}

func (p Plan) meanGap() int {
	if p.MeanGap <= 0 {
		return 4096
	}
	return p.MeanGap
}

func (p Plan) horizon() int {
	if p.Horizon <= 0 {
		return 16
	}
	return p.Horizon
}

func (p Plan) maxLatency() time.Duration {
	if p.MaxLatency <= 0 {
		return 2 * time.Millisecond
	}
	return p.MaxLatency
}

func (p Plan) stallTimeout() time.Duration {
	if p.StallTimeout <= 0 {
		return time.Second
	}
	return p.StallTimeout
}

// Point is one scheduled fault: at stream byte offset Off of its
// direction, fault Kind fires with parameter Arg (latency nanoseconds,
// XOR mask, or fragment size).
type Point struct {
	Off  int64
	Kind Fault
	Arg  uint64
}

// Injector derives per-connection fault schedules from a Plan and
// counts the faults that actually fired.
type Injector struct {
	plan    Plan
	enabled []Fault

	conns atomic.Int64
	fired [numFaults]atomic.Uint64
}

// New builds an Injector for the plan.
func New(plan Plan) *Injector {
	disabled := make(map[Fault]bool, len(plan.Disable))
	for _, f := range plan.Disable {
		disabled[f] = true
	}
	in := &Injector{plan: plan}
	for f := Fault(0); f < numFaults; f++ {
		if !disabled[f] {
			in.enabled = append(in.enabled, f)
		}
	}
	return in
}

// Fired returns how many times each fault kind has fired so far.
func (in *Injector) Fired() map[Fault]uint64 {
	out := make(map[Fault]uint64, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		if n := in.fired[f].Load(); n > 0 {
			out[f] = n
		}
	}
	return out
}

// Conns returns how many connections (and readers) have been wrapped.
func (in *Injector) Conns() int { return int(in.conns.Load()) }

func (in *Injector) note(f Fault) { in.fired[f].Add(1) }

func (in *Injector) sleep(ns uint64) {
	in.note(FaultLatency)
	time.Sleep(time.Duration(ns))
}

// stall holds the caller until the connection closes or the stall
// timeout expires, whichever is first.
func (in *Injector) stall(closed <-chan struct{}) {
	in.note(FaultStall)
	t := time.NewTimer(in.plan.stallTimeout())
	defer t.Stop()
	select {
	case <-closed:
	case <-t.C:
	}
}

// Schedule returns the fault script for one direction of the idx-th
// wrapped connection (dir 0 = reads, 1 = writes). It is a pure function
// of (plan seed, idx, dir) — the determinism tests compare successive
// calls, and a failing soak seed can be inspected with it.
func (in *Injector) Schedule(idx, dir int) []Point {
	if len(in.enabled) == 0 {
		return nil
	}
	// Two splitmix64 steps decorrelate the per-direction PCG streams
	// from each other and from nearby seeds.
	s := splitmix64(in.plan.Seed ^ splitmix64(uint64(idx)<<1|uint64(dir)))
	rng := rand.New(rand.NewPCG(s, splitmix64(s)))

	gap := func() int64 { return 1 + rng.Int64N(int64(2*in.plan.meanGap())) }
	var pts []Point
	off := gap()
	for i := 0; i < in.plan.horizon(); i++ {
		p := Point{Off: off, Kind: in.enabled[rng.IntN(len(in.enabled))]}
		switch p.Kind {
		case FaultLatency:
			p.Arg = 1 + uint64(rng.Int64N(int64(in.plan.maxLatency())))
		case FaultCorrupt:
			p.Arg = 1 + uint64(rng.IntN(255)) // nonzero XOR mask
		case FaultShortOp:
			p.Arg = 1 + uint64(rng.IntN(7)) // read/write at most this many bytes
		}
		pts = append(pts, p)
		if p.Kind == FaultReset || p.Kind == FaultStall {
			// Terminal for the schedule: a reset kills the conn, and
			// after a stall the peer has almost certainly hung up.
			break
		}
		off += gap()
	}
	return pts
}

// nextIdx allocates the next connection index, or -1 once the chaos
// budget (MaxConns) is spent.
func (in *Injector) nextIdx() int {
	idx := int(in.conns.Add(1)) - 1
	if in.plan.MaxConns > 0 && idx >= in.plan.MaxConns {
		return -1
	}
	return idx
}

// Conn wraps nc with this injector's next connection schedule. Past the
// plan's MaxConns budget it returns nc untouched.
func (in *Injector) Conn(nc net.Conn) net.Conn {
	idx := in.nextIdx()
	if idx < 0 || len(in.enabled) == 0 {
		return nc
	}
	c := &Conn{nc: nc, inj: in, closed: make(chan struct{})}
	c.rd.pts = in.Schedule(idx, 0)
	c.wr.pts = in.Schedule(idx, 1)
	return c
}

// Listener wraps l so every accepted connection carries a fresh fault
// schedule.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &chaosListener{Listener: l, inj: in}
}

type chaosListener struct {
	net.Listener
	inj *Injector
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// Reader wraps r with a read-direction fault schedule — the MRT replay
// variant: archives fed through it see the same latency spikes, short
// reads, corrupt bytes, resets (surfacing as ErrInjected) and stalls as
// a live connection would.
func (in *Injector) Reader(r io.Reader) io.Reader {
	idx := in.nextIdx()
	if idx < 0 || len(in.enabled) == 0 {
		return r
	}
	cr := &chaosReader{r: r, inj: in, closed: make(chan struct{})}
	cr.d.pts = in.Schedule(idx, 0)
	return cr
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// scrambler for deriving independent sub-seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// direction is one side of a connection's fault script plus the number
// of stream bytes that already passed it.
type direction struct {
	mu  sync.Mutex
	pts []Point
	off int64
}

// plan runs the pre-op portion of the schedule (latency, stall, reset
// due at the current offset) and then bounds the next transfer so no
// pending fault point is overrun: the returned limit is how many bytes
// the operation may move, corrupt reports whether exactly the next byte
// must be XORed with mask. A zero limit with ok=false means the
// connection was reset.
func (d *direction) plan(inj *Injector, closed <-chan struct{}, want int) (limit int, corrupt bool, mask byte, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.pts) > 0 && d.pts[0].Off <= d.off {
		p := d.pts[0]
		switch p.Kind {
		case FaultLatency:
			d.pts = d.pts[1:]
			d.mu.Unlock()
			inj.sleep(p.Arg)
			d.mu.Lock()
		case FaultStall:
			d.pts = d.pts[1:]
			d.mu.Unlock()
			inj.stall(closed)
			d.mu.Lock()
		case FaultReset:
			d.pts = nil
			inj.note(FaultReset)
			return 0, false, 0, false
		case FaultShortOp:
			d.pts = d.pts[1:]
			inj.note(FaultShortOp)
			if want > int(p.Arg) {
				want = int(p.Arg)
			}
			return d.bound(want)
		case FaultCorrupt:
			// Due now: the very next byte gets flipped.
			return 1, true, byte(d.pts[0].Arg), true
		}
	}
	return d.bound(want)
}

// bound caps want so the transfer stops exactly at the next fault
// point's offset (making corruption and resets byte-exact).
func (d *direction) bound(want int) (int, bool, byte, bool) {
	if len(d.pts) > 0 {
		if avail := d.pts[0].Off - d.off; int64(want) > avail {
			want = int(avail)
		}
	}
	if want < 1 {
		want = 1
	}
	return want, false, 0, true
}

// advance accounts n transferred bytes, consuming the corrupt point the
// transfer was planned for.
func (d *direction) advance(inj *Injector, n int, wasCorrupt bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if wasCorrupt && n > 0 && len(d.pts) > 0 && d.pts[0].Kind == FaultCorrupt {
		d.pts = d.pts[1:]
		inj.note(FaultCorrupt)
	}
	d.off += int64(n)
}
