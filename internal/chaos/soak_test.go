// End-to-end soak: the full zombied wire path — replay -> broker ->
// server -> reconnecting client -> StreamDetector — run under N seeded
// fault schedules, checking the invariants the daemon promises:
//
//   - sequence numbers arrive contiguous, no gaps or duplicates, across
//     every chaos-forced resume-from-sequence reconnect;
//   - the client-side StreamDetector emits exactly the batch Detector's
//     zombie routes, and so does the server-side alert channel;
//   - the broker's obs counters reconcile with what was delivered;
//   - backpressure policies honor their contracts under fault load.
//
// A failing seed prints itself and the command that replays it alone:
//
//	go test -race -run 'TestChaosSoak' -chaos.seed=N ./internal/chaos
package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"zombiescope/internal/beacon"
	"zombiescope/internal/chaos"
	"zombiescope/internal/experiments"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/mrt"
	"zombiescope/internal/zombie"
)

var (
	soakSeeds = flag.Int("chaos.seeds", 20,
		"how many seeds the chaos soak matrix runs (seeds 1..N)")
	soakSeed = flag.Uint64("chaos.seed", 0,
		"replay the chaos soak under this one seed instead of the matrix")
)

// soakPlan is the fault plan of seed s. Timing constants are ordered so
// only real faults force reconnects: server heartbeat (30ms) < client
// idle timeout (100ms) < stall timeout (150ms) < handshake timeout
// (400ms). The MaxConns budget guarantees the client eventually gets a
// clean connection and the soak terminates.
func soakPlan(s uint64) chaos.Plan {
	return chaos.Plan{
		Seed:         s,
		MeanGap:      2048,
		Horizon:      12,
		MaxLatency:   time.Millisecond,
		StallTimeout: 150 * time.Millisecond,
		MaxConns:     32,
	}
}

func soakSeedList() []uint64 {
	if *soakSeed != 0 {
		return []uint64{*soakSeed}
	}
	seeds := make([]uint64, *soakSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// replayHint tells a human (or CI log reader) how to reproduce one seed.
func replayHint(seed uint64) string {
	return fmt.Sprintf("replay: go test -race -run 'TestChaosSoak' -chaos.seed=%d ./internal/chaos", seed)
}

// routeKey identifies one detected zombie route for set comparison.
type routeKey struct {
	peer      zombie.PeerID
	prefix    string
	interval  int64
	duplicate bool
}

// soakScenario is the shared workload: one author-mode scenario plus its
// batch-detection reference, generated once for the whole matrix (the
// chaos seed varies the faults, not the data).
type soakScenario struct {
	stream      []livefeed.SourcedRecord
	intervals   []beacon.Interval
	trackUntil  time.Time
	batchRoutes map[routeKey]bool
	updates     map[string][]byte
}

var (
	scenarioOnce sync.Once
	scenarioVal  *soakScenario
	scenarioErr  error
)

func scenario(t *testing.T) *soakScenario {
	t.Helper()
	scenarioOnce.Do(func() {
		data, err := experiments.RunAuthorScenario(experiments.DefaultAuthorConfig(42, 32))
		if err != nil {
			scenarioErr = err
			return
		}
		stream, err := livefeed.MergeUpdates(data.Updates)
		if err != nil {
			scenarioErr = err
			return
		}
		batch, err := (&zombie.Detector{}).Detect(data.Updates, data.Intervals)
		if err != nil {
			scenarioErr = err
			return
		}
		routes := make(map[routeKey]bool)
		for _, ob := range batch.Outbreaks {
			for _, r := range ob.Routes {
				routes[routeKey{r.Peer, r.Prefix.String(), r.Interval.AnnounceAt.Unix(), r.Duplicate}] = true
			}
		}
		scenarioVal = &soakScenario{
			stream:      stream,
			intervals:   data.Intervals,
			trackUntil:  data.Config.TrackUntil,
			batchRoutes: routes,
			updates:     data.Updates,
		}
	})
	if scenarioErr != nil {
		t.Fatal(scenarioErr)
	}
	if len(scenarioVal.batchRoutes) == 0 {
		t.Fatal("batch detector found no zombies; soak scenario too small to be meaningful")
	}
	return scenarioVal
}

// faultTotals accumulates Injector.Fired() across the matrix for the
// coverage assertion.
var (
	faultMu     sync.Mutex
	faultTotals = map[chaos.Fault]uint64{}
	soakSeedRun int
)

func recordFired(fired map[chaos.Fault]uint64) {
	faultMu.Lock()
	defer faultMu.Unlock()
	soakSeedRun++
	for f, n := range fired {
		faultTotals[f] += n
	}
}

// TestChaosSoakParity runs the full wire path under each seed of the
// matrix and checks every invariant. Seeds run in parallel; each owns
// its broker, server, listener, injector and client.
func TestChaosSoakParity(t *testing.T) {
	sc := scenario(t)
	for _, seed := range soakSeedList() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runSoakSeed(t, sc, seed)
		})
	}
}

func runSoakSeed(t *testing.T, sc *soakScenario, seed uint64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\n%s", seed, fmt.Sprintf(format, args...), replayHint(seed))
	}

	// Server side: broker + pipeline, served through a chaos listener.
	// Ring and replay windows cover the whole scenario so resume never
	// loses events and drop-oldest never has to fire.
	broker := livefeed.NewBroker(livefeed.Config{RingSize: 1 << 14, ReplaySize: 1 << 14})
	defer broker.Close()
	pipe := livefeed.NewPipeline(broker, sc.intervals, 0)
	srv := &livefeed.Server{
		Broker:            broker,
		Name:              "chaos-soak",
		HeartbeatInterval: 30 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(soakPlan(seed))
	go srv.Serve(inj.Listener(l))
	defer srv.Close()

	// Client side: reconnecting consumer feeding an independent
	// StreamDetector plus the raw delivery log the invariants inspect.
	var mu sync.Mutex
	var seqs []uint64
	streamRoutes := make(map[routeKey]bool)
	serverAlerts := make(map[routeKey]bool)
	sd := zombie.NewStreamDetector(sc.intervals, 0, func(ev zombie.ZombieEvent) {
		streamRoutes[routeKey{ev.Peer, ev.Prefix.String(), ev.Interval.AnnounceAt.Unix(), ev.Duplicate}] = true
	})
	var onEventErr error
	client := &livefeed.Client{
		Addr:             l.Addr().String(),
		MinBackoff:       time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		HandshakeTimeout: 400 * time.Millisecond,
		IdleTimeout:      100 * time.Millisecond,
		FromStart:        true,
		OnEvent: func(ev livefeed.Event) {
			mu.Lock()
			defer mu.Unlock()
			seqs = append(seqs, ev.Seq)
			if onEventErr != nil {
				return
			}
			switch ev.Channel {
			case livefeed.ChannelUpdates:
				rec, err := ev.Record()
				if err != nil {
					onEventErr = fmt.Errorf("seq %d: decode raw record: %w", ev.Seq, err)
					return
				}
				sd.Advance(rec.RecordTime())
				sd.Observe(ev.Collector, rec)
			case livefeed.ChannelZombie:
				peer := zombie.PeerID{Collector: ev.Collector, AS: ev.PeerAS, Addr: ev.Peer}
				serverAlerts[routeKey{peer, ev.Alert.Prefix.String(), ev.Alert.IntervalStart.Unix(), ev.Alert.Duplicate}] = true
			}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientDone := make(chan error, 1)
	go func() { clientDone <- client.Run(ctx) }()

	// Drive the whole archive through the pipeline. Publishing is
	// in-process and safe regardless of client connectivity: the replay
	// window holds everything.
	for _, sr := range sc.stream {
		pipe.Ingest(sr)
	}
	pipe.Flush(sc.trackUntil)
	if n := pipe.PendingChecks(); n != 0 {
		fail("server-side detector left %d checks pending", n)
	}
	head := broker.Seq()
	if head == 0 {
		fail("nothing published")
	}

	// Wait for the client to survive the chaos and drain to head.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		mu.Lock()
		n := len(seqs)
		caughtUp := n > 0 && seqs[n-1] == head
		evErr := onEventErr
		mu.Unlock()
		if evErr != nil {
			fail("%v", evErr)
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			fail("client never drained to head %d (delivered %d events across %d connections)",
				head, n, inj.Conns())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-clientDone; !errors.Is(err, context.Canceled) {
		fail("client Run returned %v, want context.Canceled", err)
	}

	mu.Lock()
	defer mu.Unlock()

	// Invariant 1: contiguous delivery. Every sequence 1..head exactly
	// once, in order, across however many reconnects the faults forced.
	if uint64(len(seqs)) != head {
		fail("delivered %d events, head is %d (gap or duplicate)", len(seqs), head)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			fail("delivery %d has seq %d, want %d", i, s, i+1)
		}
	}

	// Invariant 2: detection parity. The chaos-battered stream must
	// yield exactly the batch detector's routes — client-side and on the
	// server's alert channel.
	sd.Advance(sc.trackUntil)
	if n := sd.PendingChecks(); n != 0 {
		fail("client-side detector left %d checks pending", n)
	}
	if err := equalRouteSets(sc.batchRoutes, streamRoutes); err != nil {
		fail("client-side streaming vs batch detector: %v", err)
	}
	if err := equalRouteSets(sc.batchRoutes, serverAlerts); err != nil {
		fail("server-side alerts vs batch detector: %v", err)
	}

	// Invariant 3: the obs counters reconcile with what happened. The
	// rings were sized to make every loss class zero; delivery implies
	// at least head events were queued to subscribers.
	m := broker.Metrics().Snapshot()
	if got := uint64(m["records_in"]); got != head {
		fail("metrics records_in = %d, broker head = %d", got, head)
	}
	if m["events_out"] < int64(head) {
		fail("metrics events_out = %d < %d delivered", m["events_out"], head)
	}
	for _, k := range []string{"kicks", "drops_drop_oldest", "block_stalls"} {
		if m[k] != 0 {
			fail("metrics %s = %d, want 0 (policy contract violated under chaos)", k, m[k])
		}
	}
	if m["subscribers_total"] < 1 {
		fail("metrics subscribers_total = %d, want >= 1", m["subscribers_total"])
	}

	recordFired(inj.Fired())
	t.Logf("seed %d: head=%d conns=%d fired=%v", seed, head, inj.Conns(), inj.Fired())
}

// TestChaosSoakFaultCoverage asserts the matrix exercised every fault
// kind at least once — a soak that never corrupts or stalls is not
// testing what it claims. Declared after TestChaosSoakParity so the
// totals are populated (top-level tests run in declaration order).
func TestChaosSoakFaultCoverage(t *testing.T) {
	faultMu.Lock()
	defer faultMu.Unlock()
	if soakSeedRun == 0 {
		t.Skip("soak did not run (test filtered out)")
	}
	if *soakSeed != 0 && soakSeedRun < 3 {
		t.Skip("single-seed replay: coverage is a matrix property")
	}
	var missing []string
	for _, f := range chaos.Faults() {
		if faultTotals[f] == 0 {
			missing = append(missing, f.String())
		}
	}
	if len(missing) > 0 {
		t.Fatalf("fault kinds never fired across %d seeds: %v (totals %v)",
			soakSeedRun, missing, faultTotals)
	}
	t.Logf("fault totals across %d seeds: %v", soakSeedRun, faultTotals)
}

// TestChaosSoakBackpressure checks the three policy contracts under
// fault load: kick-slowest disconnects (only) the laggard, drop-oldest
// sheds but never reorders, and block never loses an event.
func TestChaosSoakBackpressure(t *testing.T) {
	t.Run("kick-slowest", func(t *testing.T) {
		t.Parallel()
		// Tiny ring, a client that never reads: the server must kick it,
		// surface ErrKicked on the wire, and count exactly what it did.
		broker := livefeed.NewBroker(livefeed.Config{RingSize: 4, ReplaySize: -1})
		defer broker.Close()
		srv := &livefeed.Server{Broker: broker, Name: "bp-kick", WriteTimeout: 2 * time.Second}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(chaos.Plan{Seed: 1001, MeanGap: 4096, Horizon: 4,
			StallTimeout: 100 * time.Millisecond,
			Disable:      []chaos.Fault{chaos.FaultReset, chaos.FaultCorrupt, chaos.FaultStall}})
		go srv.Serve(inj.Listener(l))
		defer srv.Close()

		conn, err := livefeed.Dial(l.Addr().String(), livefeed.Filter{}, livefeed.PolicyKickSlowest, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < 100000; i++ {
			broker.Publish(livefeed.Event{Channel: livefeed.ChannelUpdates, Type: livefeed.TypeUpdate, Collector: "rrc00"})
		}
		deadline := time.Now().Add(time.Minute)
		for broker.SubscriberCount() > 0 {
			if time.Now().After(deadline) {
				t.Fatal("slow subscriber never kicked")
			}
			time.Sleep(time.Millisecond)
		}
		for {
			if _, err := conn.Next(); err != nil {
				if !errors.Is(err, livefeed.ErrKicked) {
					t.Fatalf("stream error = %v, want ErrKicked", err)
				}
				break
			}
		}
		if kicks := broker.Metrics().Snapshot()["kicks"]; kicks != 1 {
			t.Fatalf("metrics kicks = %d, want 1", kicks)
		}
	})

	t.Run("drop-oldest", func(t *testing.T) {
		t.Parallel()
		// Tiny ring, a slow reader: events are shed, but what does arrive
		// is strictly increasing (no duplicates, no reordering) and the
		// drop counter accounts for every missing event.
		broker := livefeed.NewBroker(livefeed.Config{RingSize: 8, ReplaySize: -1})
		defer broker.Close()
		srv := &livefeed.Server{Broker: broker, Name: "bp-drop", WriteTimeout: 2 * time.Second}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		defer srv.Close()

		conn, err := livefeed.Dial(l.Addr().String(), livefeed.Filter{}, livefeed.PolicyDropOldest, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		const total = 5000
		for i := 0; i < total; i++ {
			broker.Publish(livefeed.Event{Channel: livefeed.ChannelUpdates, Type: livefeed.TypeUpdate, Collector: "rrc00"})
			if i%100 == 0 {
				time.Sleep(100 * time.Microsecond)
			}
		}
		broker.Close() // drains: subscriber sees remaining buffer then ErrBrokerClosed

		var got []uint64
		for {
			ev, err := conn.Next()
			if err != nil {
				break // connection torn down after the broker closed
			}
			got = append(got, ev.Seq)
			if ev.Seq == total {
				break
			}
		}
		if len(got) == 0 {
			t.Fatal("slow reader received nothing at all")
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatal("drop-oldest reordered events")
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("duplicate seq %d under drop-oldest", got[i])
			}
		}
	})

	t.Run("block", func(t *testing.T) {
		t.Parallel()
		// In-process block subscriber with a slow consumer: Publish must
		// wait rather than lose, so the consumer sees every event.
		broker := livefeed.NewBroker(livefeed.Config{RingSize: 4, ReplaySize: -1})
		defer broker.Close()
		sub, _, err := broker.Subscribe(livefeed.Filter{}, livefeed.PolicyBlock, 0)
		if err != nil {
			t.Fatal(err)
		}
		const total = 500
		done := make(chan []uint64, 1)
		go func() {
			var got []uint64
			for len(got) < total {
				ev, err := sub.Next()
				if err != nil {
					break
				}
				got = append(got, ev.Seq)
				time.Sleep(50 * time.Microsecond) // slower than the publisher
			}
			done <- got
		}()
		for i := 0; i < total; i++ {
			broker.Publish(livefeed.Event{Channel: livefeed.ChannelUpdates, Type: livefeed.TypeUpdate, Collector: "rrc00"})
		}
		got := <-done
		if len(got) != total {
			t.Fatalf("block subscriber saw %d/%d events", len(got), total)
		}
		for i, s := range got {
			if s != uint64(i+1) {
				t.Fatalf("block delivery %d has seq %d, want %d", i, s, i+1)
			}
		}
		if stalls := broker.Metrics().Snapshot()["block_stalls"]; stalls == 0 {
			t.Fatal("publisher never blocked: the test did not exercise the policy")
		}
	})
}

// TestChaosReaderMRTReplay: the io.Reader face of the harness is
// transparent to the MRT decoder under benign faults (latency, short
// reads, stalls) — the decode yields byte-identical records, just
// slower. Corruption and resets are excluded: MRT has no checksum, so
// those are exactly the cases the decoder cannot promise to catch.
func TestChaosReaderMRTReplay(t *testing.T) {
	sc := scenario(t)
	var name string
	for n := range sc.updates {
		if name == "" || n < name {
			name = n
		}
	}
	raw := sc.updates[name]
	clean, err := mrt.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("empty archive")
	}

	in := chaos.New(chaos.Plan{
		Seed: 77, MeanGap: 512, Horizon: 64,
		MaxLatency:   200 * time.Microsecond,
		StallTimeout: 20 * time.Millisecond,
		Disable:      []chaos.Fault{chaos.FaultCorrupt, chaos.FaultReset},
	})
	chaotic, err := mrt.ReadAll(in.Reader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("decode through benign chaos: %v", err)
	}
	if len(chaotic) != len(clean) {
		t.Fatalf("decoded %d records through chaos, %d clean", len(chaotic), len(clean))
	}
	var cleanBuf, chaosBuf bytes.Buffer
	if err := mrt.NewWriter(&cleanBuf).WriteAll(clean); err != nil {
		t.Fatal(err)
	}
	if err := mrt.NewWriter(&chaosBuf).WriteAll(chaotic); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanBuf.Bytes(), chaosBuf.Bytes()) {
		t.Fatal("records decoded through benign chaos re-encode differently")
	}
	if len(in.Fired()) == 0 {
		t.Fatal("no fault fired across the archive; raise Horizon or shrink MeanGap")
	}
}

func equalRouteSets(want, got map[routeKey]bool) error {
	for k := range want {
		if !got[k] {
			return fmt.Errorf("missing route %+v (want %d routes, got %d)", k, len(want), len(got))
		}
	}
	for k := range got {
		if !want[k] {
			return fmt.Errorf("unexpected route %+v (want %d routes, got %d)", k, len(want), len(got))
		}
	}
	return nil
}
