package chaos

import (
	"io"
	"sync"
)

// chaosReader is the io.Reader face of the harness, for feeding MRT
// archives (or any byte stream) through a read-direction fault
// schedule. A scheduled reset surfaces as ErrInjected; Close releases a
// stall early, mirroring how closing a connection does.
type chaosReader struct {
	r   io.Reader
	inj *Injector
	d   direction

	closeOnce sync.Once
	closed    chan struct{}
}

func (cr *chaosReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return cr.r.Read(p)
	}
	limit, corrupt, mask, ok := cr.d.plan(cr.inj, cr.closed, len(p))
	if !ok {
		return 0, ErrInjected
	}
	n, err := cr.r.Read(p[:limit])
	if corrupt && n > 0 {
		p[0] ^= mask
	}
	cr.d.advance(cr.inj, n, corrupt)
	return n, err
}

// Close releases a pending stall; it never closes the wrapped reader.
func (cr *chaosReader) Close() error {
	cr.closeOnce.Do(func() { close(cr.closed) })
	return nil
}
