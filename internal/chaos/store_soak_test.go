// Store soak: kill the store-journaled pipeline mid-append under N
// seeded crash schedules — each seed picks its own kill point and tail
// damage (clean abandon, truncated tail, or a flipped byte in the last
// frame) — reopen, recover, re-ingest, and check the daemon's durability
// promises:
//
//   - the reopened store recovers a prefix of what was journaled and the
//     detector resumes from it without re-processing or skipping records;
//   - a FromStart subscriber after the crash sees a contiguous, gap-free
//     sequence — the journal serves everything the replay ring evicted,
//     with zero events reported lost;
//   - detection across the crash boundary is bit-identical to the batch
//     in-memory oracle: the union of alerts delivered before the kill and
//     alerts visible after recovery is exactly the oracle's route set
//     (at-least-once across the boundary, nothing missing, nothing
//     invented).
//
// A failing seed prints itself and the command that replays it alone:
//
//	go test -race -run 'TestStoreCrashSoak' -store.seed=N ./internal/chaos
package chaos_test

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"zombiescope/internal/eventstore"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/zombie"
)

var (
	storeSeeds = flag.Int("store.seeds", 10,
		"how many seeds the store crash soak runs (seeds 1..N)")
	storeSeed = flag.Uint64("store.seed", 0,
		"replay the store crash soak under this one seed instead of the matrix")
)

func storeSeedList() []uint64 {
	if *storeSeed != 0 {
		return []uint64{*storeSeed}
	}
	seeds := make([]uint64, *storeSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

func TestStoreCrashSoak(t *testing.T) {
	sc := scenario(t)
	for _, seed := range storeSeedList() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runStoreCrashSeed(t, sc, seed)
		})
	}
}

// damageTail vandalizes the active (unsealed) segment the way a real
// crash can: mode 1 truncates up to 128 tail bytes, mode 2 flips one
// byte inside the last frame. Mode 0 leaves the abandoned file as is
// (write() data present, no seal). Returns a description for the log.
func damageTail(t *testing.T, dir string, rng *rand.Rand, mode uint64) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments on disk after ingest")
	}
	sort.Strings(segs) // fixed-width hex names: lexical == numeric
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= 32+64 { // header plus less than one realistic frame
		return "no damage (active segment too small)"
	}
	switch mode {
	case 1:
		cut := int64(1 + rng.Intn(128))
		if max := fi.Size() - 32 - 1; cut > max {
			cut = max
		}
		if err := os.Truncate(last, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("truncated %d tail bytes of %s", cut, filepath.Base(last))
	case 2:
		off := fi.Size() - int64(1+rng.Intn(32))
		f, err := os.OpenFile(last, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("flipped byte at offset %d of %s", off, filepath.Base(last))
	default:
		return "clean abandon (no seal, no damage)"
	}
}

func runStoreCrashSeed(t *testing.T, sc *soakScenario, seed uint64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\nreplay: go test -race -run 'TestStoreCrashSoak' -store.seed=%d ./internal/chaos",
			seed, fmt.Sprintf(format, args...), seed)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	mid := len(sc.stream)/4 + rng.Intn(len(sc.stream)/2)
	dir := t.TempDir()

	// Life 1: journaled pipeline ingests a prefix of the stream, with a
	// live subscriber recording the alerts actually delivered pre-crash.
	st1, err := eventstore.Open(eventstore.Options{Dir: dir, SegmentBytes: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	b1 := livefeed.NewBroker(livefeed.Config{
		RingSize: 1 << 15, ReplaySize: 1 << 14,
		Journal: &livefeed.StoreJournal{Store: st1},
	})
	sub1, _, err := b1.Subscribe(livefeed.Filter{}, livefeed.PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1 := livefeed.NewPipeline(b1, sc.intervals, 0)
	for _, sr := range sc.stream[:mid] {
		p1.Ingest(sr)
	}

	// Crash: the store is abandoned mid-append — no seal, no final sync —
	// and the broker torn down. Drain what the pre-crash subscriber got.
	st1.Abandon()
	b1.Close()
	preRoutes := make(map[routeKey]bool)
	for {
		ev, err := sub1.NextTimeout(5 * time.Second)
		if err != nil {
			if !errors.Is(err, livefeed.ErrBrokerClosed) {
				fail("pre-crash subscriber drain: %v", err)
			}
			break
		}
		if ev.Channel == livefeed.ChannelZombie {
			peer := zombie.PeerID{Collector: ev.Collector, AS: ev.PeerAS, Addr: ev.Peer}
			preRoutes[routeKey{peer, ev.Alert.Prefix.String(), ev.Alert.IntervalStart.Unix(), ev.Alert.Duplicate}] = true
		}
	}
	what := damageTail(t, dir, rng, seed%3)

	// Life 2: reopen (torn tail detected and truncated), recover the
	// detector from the surviving journal, resume ingest where it ends.
	st2, err := eventstore.Open(eventstore.Options{Dir: dir, SegmentBytes: 1 << 15})
	if err != nil {
		fail("reopen after %s: %v", what, err)
	}
	defer st2.Close()
	b2 := livefeed.NewBroker(livefeed.Config{
		RingSize: 1 << 15, ReplaySize: 256, // tiny window: resume must come from the journal
		Journal:  &livefeed.StoreJournal{Store: st2},
		StartSeq: st2.LastSeq(),
	})
	defer b2.Close()
	p2 := livefeed.NewPipeline(b2, sc.intervals, 0)
	n, err := p2.Recover(st2)
	if err != nil {
		fail("recover after %s: %v", what, err)
	}
	if n == 0 {
		fail("recovered 0 records after %s (mid=%d)", what, mid)
	}
	off := livefeed.ResumeOffset(sc.stream, n)
	if off > mid {
		fail("recovered %d records -> resume offset %d past kill point %d", n, off, mid)
	}
	for _, sr := range sc.stream[off:] {
		p2.Ingest(sr)
	}
	p2.Flush(sc.trackUntil)
	if pending := p2.PendingChecks(); pending != 0 {
		fail("detector left %d checks pending after recovery", pending)
	}
	head := b2.Seq()

	// Invariant 1: gap-free FromStart resume across the crash. The replay
	// ring only holds the last 256 events, so everything older must be
	// served from the journal — with nothing reported lost.
	sub2, lost, err := b2.SubscribeFrom(livefeed.Filter{}, livefeed.PolicyBlock, 0, true)
	if err != nil {
		fail("FromStart subscribe: %v", err)
	}
	defer sub2.Close()
	if lost != 0 {
		fail("FromStart resume lost %d events across the crash", lost)
	}
	postRoutes := make(map[routeKey]bool)
	for want := uint64(1); want <= head; want++ {
		ev, err := sub2.NextTimeout(5 * time.Second)
		if err != nil {
			fail("drain stalled at seq %d of %d: %v", want, head, err)
		}
		if ev.Seq != want {
			fail("sequence gap after crash: got %d, want %d", ev.Seq, want)
		}
		if ev.Channel == livefeed.ChannelZombie {
			peer := zombie.PeerID{Collector: ev.Collector, AS: ev.PeerAS, Addr: ev.Peer}
			postRoutes[routeKey{peer, ev.Alert.Prefix.String(), ev.Alert.IntervalStart.Unix(), ev.Alert.Duplicate}] = true
		}
	}

	// Invariant 2: detection across the crash boundary is bit-identical
	// to the in-memory oracle. Alerts cross the boundary at-least-once,
	// so the union of pre-crash deliveries and post-recovery stream must
	// be exactly the batch detector's route set.
	union := make(map[routeKey]bool, len(postRoutes))
	for k := range preRoutes {
		union[k] = true
	}
	for k := range postRoutes {
		union[k] = true
	}
	if err := equalRouteSets(sc.batchRoutes, union); err != nil {
		fail("store-backed detection vs batch oracle (%s): %v", what, err)
	}
	t.Logf("seed %d: kill@%d/%d, %s, recovered %d records (resume offset %d), head %d, pre-alerts %d, post-alerts %d",
		seed, mid, len(sc.stream), what, n, off, head, len(preRoutes), len(postRoutes))
}
