// Fan-out soak: the encode-once broadcast path under scale and faults.
// One broker publishes a seeded stream to a large population of
// in-process subscribers (mixed policies, mixed filters, deliberately
// slow and deliberately doomed readers) plus reconnecting wire clients
// behind the chaos injector, whose resets kill connections mid-writev
// while the server still holds frame references in its batch.
//
// The shared-buffer invariants, on every delivery:
//
//   - a dequeued frame's bytes always parse as one well-formed,
//     CRC-valid FrameEvent whose decoded sequence matches the frame's —
//     a recycled or torn buffer cannot survive the checksum;
//   - frames held across heavy publish churn keep their exact bytes
//     until released (reuse-while-referenced torture);
//   - per-subscriber sequences stay strictly increasing; FromStart wire
//     clients recover the full contiguous stream across chaos-forced
//     reconnects;
//   - no refcount panic (double release / negative count) anywhere,
//     race-clean under -race.
//
// A failing seed prints the command that replays it alone:
//
//	go test -race -run 'TestChaosFanoutSoak' -fanout.seed=N ./internal/chaos
package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"zombiescope/internal/bgp"
	"zombiescope/internal/chaos"
	"zombiescope/internal/livefeed"
)

var (
	fanoutSubs = flag.Int("fanout.subs", 768,
		"in-process subscribers per fan-out soak seed")
	fanoutClients = flag.Int("fanout.clients", 3,
		"reconnecting wire clients per fan-out soak seed")
	fanoutSeeds = flag.Int("fanout.seeds", 4,
		"how many seeds the fan-out soak runs (seeds 1..N)")
	fanoutSeed = flag.Uint64("fanout.seed", 0,
		"replay the fan-out soak under this one seed instead of the matrix")
	fanoutEvents = flag.Int("fanout.events", 1500,
		"events published per fan-out soak seed")
)

func fanoutSeedList() []uint64 {
	if *fanoutSeed != 0 {
		return []uint64{*fanoutSeed}
	}
	seeds := make([]uint64, *fanoutSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

var fanoutCollectors = []string{"rrc00", "rrc01", "rrc06"}

var fanoutPrefixes = []netip.Prefix{
	netip.MustParsePrefix("84.205.64.0/24"),
	netip.MustParsePrefix("84.205.65.0/24"),
	netip.MustParsePrefix("93.175.144.0/24"),
}

// fanoutEvent builds event i of the seeded stream: a mix of updates and
// zombie alerts across collectors, so channel- and collector-filtered
// shards all see traffic.
func fanoutEvent(rng *rand.Rand, i int) livefeed.Event {
	ts := time.Unix(1700000000+int64(i), 0).UTC()
	collector := fanoutCollectors[rng.Intn(len(fanoutCollectors))]
	peerAS := bgp.ASN(64500 + rng.Intn(4))
	if rng.Intn(8) == 0 {
		p := fanoutPrefixes[rng.Intn(len(fanoutPrefixes))]
		return livefeed.Event{
			Channel: livefeed.ChannelZombie, Type: livefeed.TypeZombie,
			Collector: collector, Timestamp: ts, PeerAS: peerAS,
			Alert: &livefeed.Alert{
				Prefix: p, Path: []bgp.ASN{peerAS, 12654},
				AnnouncedAt: ts.Add(-90 * time.Minute), DetectedAt: ts,
				IntervalStart: ts.Add(-2 * time.Hour), IntervalWithdraw: ts.Add(-30 * time.Minute),
			},
		}
	}
	return livefeed.Event{
		Channel: livefeed.ChannelUpdates, Type: livefeed.TypeUpdate,
		Collector: collector, Timestamp: ts, PeerAS: peerAS,
		Path: []bgp.ASN{peerAS, 3356, 12654},
		Announcements: []livefeed.Announcement{{
			NextHop:  netip.MustParseAddr("192.0.2.1"),
			Prefixes: []netip.Prefix{fanoutPrefixes[rng.Intn(len(fanoutPrefixes))]},
		}},
	}
}

// validateFrame checks one dequeued frame's shared bytes end to end:
// framing, checksum, and (sampled, they are expensive at 10k
// subscribers) a full JSON decode matching the frame's own sequence. Any
// buffer recycled while this subscriber still held a reference would
// show up here as a CRC mismatch or a foreign sequence number.
func validateFrame(fr livefeed.Frame, decodeJSON bool) error {
	wire := fr.Wire()
	rd := bytes.NewReader(wire)
	typ, payload, err := livefeed.ReadFrame(rd)
	if err != nil {
		return fmt.Errorf("seq %d: shared bytes do not parse: %w", fr.Seq(), err)
	}
	if typ != livefeed.FrameEvent {
		return fmt.Errorf("seq %d: shared bytes parse as frame type %d", fr.Seq(), typ)
	}
	if rd.Len() != 0 {
		return fmt.Errorf("seq %d: %d trailing bytes after the frame", fr.Seq(), rd.Len())
	}
	if !decodeJSON {
		return nil
	}
	var ev livefeed.Event
	if err := json.Unmarshal(payload, &ev); err != nil {
		return fmt.Errorf("seq %d: payload does not decode: %w", fr.Seq(), err)
	}
	if ev.Seq != fr.Seq() {
		return fmt.Errorf("frame says seq %d but payload decodes to seq %d (reused buffer?)", fr.Seq(), ev.Seq)
	}
	return nil
}

// heldFrame is one frame a torture subscriber keeps referenced across
// publish churn, with the byte snapshot taken at dequeue time.
type heldFrame struct {
	fr   livefeed.Frame
	snap []byte
}

// fanoutDrainer consumes one in-process subscriber until the stream
// ends, enforcing the shared-buffer invariants. kind selects behavior:
// "fast" drains eagerly, "holder" keeps a window of frames referenced
// while the feed churns past, "doomed" reads slowly on a tiny ring until
// kicked.
func fanoutDrainer(sub *livefeed.Subscriber, kind string, errs chan<- error) {
	var last uint64
	var held []heldFrame
	n := 0
	fail := func(err error) {
		select {
		case errs <- fmt.Errorf("%s drainer: %w", kind, err):
		default:
		}
	}
	releaseHeld := func(h heldFrame) bool {
		if !bytes.Equal(h.fr.Wire(), h.snap) {
			fail(fmt.Errorf("held frame seq %d mutated while referenced", h.fr.Seq()))
			return false
		}
		h.fr.Release()
		return true
	}
	defer func() {
		for _, h := range held {
			if !releaseHeld(h) {
				return
			}
		}
	}()
	for {
		fr, err := sub.NextFrame()
		if err != nil {
			switch {
			case errors.Is(err, livefeed.ErrBrokerClosed), errors.Is(err, livefeed.ErrClosed):
			case errors.Is(err, livefeed.ErrKicked):
				if kind != "doomed" {
					fail(fmt.Errorf("kicked, but this subscriber was keeping up: %w", err))
				}
			default:
				fail(err)
			}
			return
		}
		n++
		if err := validateFrame(fr, n%32 == 0); err != nil {
			fail(err)
			fr.Release()
			return
		}
		if seq := fr.Seq(); seq <= last {
			fail(fmt.Errorf("seq %d after %d: reordered or duplicated", seq, last))
			fr.Release()
			return
		} else {
			last = seq
		}
		switch kind {
		case "holder":
			// Keep a window of 8 frames referenced while the feed churns;
			// snapshot now, verify byte-stability at release.
			held = append(held, heldFrame{fr: fr, snap: append([]byte(nil), fr.Wire()...)})
			if len(held) > 8 {
				h := held[0]
				held = held[:copy(held, held[1:])]
				if !releaseHeld(h) {
					return
				}
			}
		case "doomed":
			fr.Release()
			if n%8 == 0 {
				time.Sleep(50 * time.Millisecond) // fall hopelessly behind on purpose
			}
		default:
			fr.Release()
		}
	}
}

// TestChaosFanoutSoak is the scale soak of the broadcast path. Flags
// scale it: CI runs a short seed list at 10k subscribers via
// -fanout.subs=10000 -fanout.seeds=2.
func TestChaosFanoutSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out soak is not a -short test")
	}
	for _, seed := range fanoutSeedList() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFanoutSeed(t, seed)
		})
	}
}

func runFanoutSeed(t *testing.T, seed uint64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\nreplay: go test -race -run 'TestChaosFanoutSoak' -fanout.seed=%d ./internal/chaos",
			seed, fmt.Sprintf(format, args...), seed)
	}

	broker := livefeed.NewBroker(livefeed.Config{RingSize: 256, ReplaySize: 1 << 12})
	defer broker.Close()
	srv := &livefeed.Server{
		Broker:            broker,
		Name:              "fanout-soak",
		HeartbeatInterval: 30 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
		WriteBatch:        8, // small batches force many writev boundaries for resets to land in
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Resets and corruption stay enabled: connections die mid-writev
	// while the server holds the batch's frame references.
	inj := chaos.New(chaos.Plan{
		Seed:         seed,
		MeanGap:      2048,
		Horizon:      12,
		MaxLatency:   time.Millisecond,
		StallTimeout: 150 * time.Millisecond,
		MaxConns:     32,
	})
	go srv.Serve(inj.Listener(l))
	defer srv.Close()

	// In-process population: mostly fast drainers across filter shards,
	// plus holders (reuse-while-referenced torture) and doomed tiny-ring
	// slow readers that must get kicked without corrupting anyone else.
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	subs := *fanoutSubs
	doomed := 0
	filters := []livefeed.Filter{
		{},
		{Channels: []string{livefeed.ChannelZombie}},
		{Channels: []string{livefeed.ChannelUpdates}},
		{Collectors: []string{"rrc00"}},
		{PeerAS: []bgp.ASN{64500, 64501}},
	}
	for i := 0; i < subs; i++ {
		kind := "fast"
		policy := livefeed.PolicyDropOldest
		switch {
		case i%97 == 5: // sparse: every doomed reader costs a kick
			kind, policy = "doomed", livefeed.PolicyKickSlowest
			doomed++
		case i%11 == 3:
			kind = "holder"
		}
		sub, _, err := broker.SubscribeFrom(filters[i%len(filters)], policy, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fanoutDrainer(sub, kind, errs)
		}()
	}

	// Wire clients: FromStart reconnecting consumers that must recover
	// the complete contiguous stream across chaos-forced reconnects.
	type clientState struct {
		mu   sync.Mutex
		last uint64
		errs []error
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	states := make([]*clientState, *fanoutClients)
	clientDone := make(chan error, *fanoutClients)
	for c := 0; c < *fanoutClients; c++ {
		st := &clientState{}
		states[c] = st
		client := &livefeed.Client{
			Addr:             l.Addr().String(),
			MinBackoff:       time.Millisecond,
			MaxBackoff:       20 * time.Millisecond,
			HandshakeTimeout: 400 * time.Millisecond,
			IdleTimeout:      100 * time.Millisecond,
			FromStart:        true,
			OnEvent: func(ev livefeed.Event) {
				st.mu.Lock()
				defer st.mu.Unlock()
				if ev.Seq != st.last+1 && len(st.errs) < 4 {
					st.errs = append(st.errs, fmt.Errorf("wire client: seq %d after %d", ev.Seq, st.last))
				}
				st.last = ev.Seq
			},
		}
		go func() { clientDone <- client.Run(ctx) }()
	}

	// Publish the seeded stream. Occasional yields keep 10k drainers
	// scheduled on small CI machines.
	rng := rand.New(rand.NewSource(int64(seed)))
	events := *fanoutEvents
	for i := 0; i < events; i++ {
		broker.Publish(fanoutEvent(rng, i))
		if i%64 == 63 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	head := broker.Seq()
	if head == 0 {
		fail("nothing published")
	}

	// Wire clients must drain to head despite the chaos.
	deadline := time.Now().Add(2 * time.Minute)
	for _, st := range states {
		for {
			st.mu.Lock()
			last := st.last
			cerrs := st.errs
			st.mu.Unlock()
			if len(cerrs) > 0 {
				fail("%v", cerrs[0])
			}
			if last == head {
				break
			}
			if time.Now().After(deadline) {
				fail("wire client stuck at seq %d of %d (%d connections)", last, head, inj.Conns())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	for range states {
		if err := <-clientDone; !errors.Is(err, context.Canceled) {
			fail("client Run returned %v, want context.Canceled", err)
		}
	}

	// End the in-process streams and wait for every drainer's final
	// held-frame stability checks.
	shards := broker.ShardCount()
	broker.Close()
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(2 * time.Minute):
		fail("in-process drainers did not finish after broker close")
	}
	select {
	case err := <-errs:
		fail("%v", err)
	default:
	}

	m := broker.Metrics().Snapshot()
	if got := m["records_in"]; got != int64(events) {
		fail("metrics records_in = %d, want %d", got, events)
	}
	if doomed > 0 && m["kicks"] == 0 {
		fail("no doomed reader was ever kicked (%d candidates): the soak did not stress kick-slowest", doomed)
	}
	if shards == 0 || shards > len(filters)+1 {
		fail("broker tracked %d filter shards for %d distinct filters", shards, len(filters))
	}
	t.Logf("seed %d: head=%d subs=%d kicks=%d drops=%d conns=%d shards=%d",
		seed, head, subs, m["kicks"], m["drops_drop_oldest"], inj.Conns(), shards)
}
