package chaos

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterministic: schedules are a pure function of
// (seed, connection, direction) — the property that makes a failing
// soak seed replayable.
func TestScheduleDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, MeanGap: 512, Horizon: 10}
	a, b := New(plan), New(plan)
	for idx := 0; idx < 8; idx++ {
		for dir := 0; dir < 2; dir++ {
			if !reflect.DeepEqual(a.Schedule(idx, dir), b.Schedule(idx, dir)) {
				t.Fatalf("schedule (%d,%d) differs between injectors built from the same plan", idx, dir)
			}
			if !reflect.DeepEqual(a.Schedule(idx, dir), a.Schedule(idx, dir)) {
				t.Fatalf("schedule (%d,%d) differs between calls on one injector", idx, dir)
			}
		}
	}
	// Different seeds must decorrelate, and so must the two directions of
	// one connection.
	c := New(Plan{Seed: 8, MeanGap: 512, Horizon: 10})
	if reflect.DeepEqual(a.Schedule(0, 0), c.Schedule(0, 0)) {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
	if reflect.DeepEqual(a.Schedule(0, 0), a.Schedule(0, 1)) {
		t.Fatal("read and write schedules of one connection are identical")
	}
}

// TestScheduleShape: offsets strictly increase, only enabled faults
// appear, terminal faults (reset, stall) end the schedule, and the
// horizon bounds its length.
func TestScheduleShape(t *testing.T) {
	in := New(Plan{Seed: 99, MeanGap: 256, Horizon: 12})
	sawTerminal := false
	for idx := 0; idx < 64; idx++ {
		for dir := 0; dir < 2; dir++ {
			pts := in.Schedule(idx, dir)
			if len(pts) == 0 || len(pts) > 12 {
				t.Fatalf("schedule (%d,%d) has %d points, want 1..12", idx, dir, len(pts))
			}
			for i, p := range pts {
				if i > 0 && p.Off <= pts[i-1].Off {
					t.Fatalf("schedule (%d,%d) offsets not increasing: %v", idx, dir, pts)
				}
				terminal := p.Kind == FaultReset || p.Kind == FaultStall
				if terminal {
					sawTerminal = true
					if i != len(pts)-1 {
						t.Fatalf("schedule (%d,%d) continues past terminal %s: %v", idx, dir, p.Kind, pts)
					}
				}
				if p.Kind == FaultCorrupt && byte(p.Arg) == 0 {
					t.Fatalf("corrupt point with zero mask: %+v", p)
				}
			}
		}
	}
	if !sawTerminal {
		t.Fatal("64 connections x 12 points produced no reset/stall at all")
	}

	only := New(Plan{Seed: 99, Horizon: 12,
		Disable: []Fault{FaultCorrupt, FaultReset, FaultStall, FaultLatency}})
	for idx := 0; idx < 16; idx++ {
		for _, p := range only.Schedule(idx, 0) {
			if p.Kind != FaultShortOp {
				t.Fatalf("disabled fault %s still scheduled", p.Kind)
			}
		}
	}
}

// randBytes is deterministic test data (the harness itself bans
// wall-clock randomness, and so do its tests).
func randBytes(seed uint64, n int) []byte {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return b
}

// onlyFault disables every fault but f.
func onlyFault(f Fault) []Fault {
	var d []Fault
	for _, g := range Faults() {
		if g != f {
			d = append(d, g)
		}
	}
	return d
}

// TestReaderCorruptsExactBytes: with a corruption-only plan, the bytes
// that come out of the reader differ from the input at exactly the
// scheduled offsets, XORed with the scheduled masks — twice over, since
// the same seed must corrupt the same bytes.
func TestReaderCorruptsExactBytes(t *testing.T) {
	plan := Plan{Seed: 5, MeanGap: 200, Horizon: 8, Disable: onlyFault(FaultCorrupt)}
	clean := randBytes(1, 4096)

	run := func() []byte {
		in := New(plan)
		out, err := io.ReadAll(in.Reader(bytes.NewReader(clean)))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(len(in.Schedule(0, 0))); in.Fired()[FaultCorrupt] != want {
			t.Fatalf("fired %d corruptions, schedule has %d", in.Fired()[FaultCorrupt], want)
		}
		return out
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatal("same seed corrupted different bytes on two runs")
	}

	want := append([]byte(nil), clean...)
	for _, p := range New(plan).Schedule(0, 0) {
		if p.Off >= int64(len(want)) {
			t.Fatalf("corrupt point at %d beyond %d-byte stream; shrink MeanGap", p.Off, len(want))
		}
		want[p.Off] ^= byte(p.Arg)
	}
	if !bytes.Equal(first, want) {
		t.Fatal("corruption did not land at the scheduled offsets/masks")
	}
}

// TestReaderResetsAtExactOffset: a reset-only schedule cuts the stream
// after exactly Off bytes with ErrInjected.
func TestReaderResetsAtExactOffset(t *testing.T) {
	plan := Plan{Seed: 11, MeanGap: 300, Horizon: 4, Disable: onlyFault(FaultReset)}
	in := New(plan)
	resetOff := in.Schedule(0, 0)[0].Off

	out, err := io.ReadAll(in.Reader(bytes.NewReader(randBytes(2, 4096))))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAll error = %v, want ErrInjected", err)
	}
	if int64(len(out)) != resetOff {
		t.Fatalf("stream cut after %d bytes, schedule says %d", len(out), resetOff)
	}
	if in.Fired()[FaultReset] != 1 {
		t.Fatalf("fired = %v, want one reset", in.Fired())
	}
}

// TestReaderShortOpsLoseNothing: short reads fragment the stream but
// deliver every byte unchanged.
func TestReaderShortOpsLoseNothing(t *testing.T) {
	clean := randBytes(3, 8192)
	in := New(Plan{Seed: 21, MeanGap: 128, Horizon: 16, Disable: onlyFault(FaultShortOp)})
	out, err := io.ReadAll(in.Reader(bytes.NewReader(clean)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, clean) {
		t.Fatal("short ops altered or lost data")
	}
	if in.Fired()[FaultShortOp] == 0 {
		t.Fatal("no short op fired across a 16-point schedule")
	}
}

// TestStallTimeoutAndCloseRelease: a stall holds a read until the plan
// timeout — or until Close, whichever is first.
func TestStallTimeoutAndCloseRelease(t *testing.T) {
	mk := func(timeout time.Duration) (*Injector, *chaosReader) {
		in := New(Plan{Seed: 31, MeanGap: 64, Horizon: 2,
			StallTimeout: timeout, Disable: onlyFault(FaultStall)})
		return in, in.Reader(bytes.NewReader(randBytes(4, 4096))).(*chaosReader)
	}

	in, r := mk(80 * time.Millisecond)
	start := time.Now()
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("stall released after %v, want ~80ms", elapsed)
	}
	if in.Fired()[FaultStall] != 1 {
		t.Fatalf("fired = %v, want one stall", in.Fired())
	}

	// With a long timeout, Close must release the stall early.
	_, r = mk(30 * time.Second)
	go func() {
		time.Sleep(30 * time.Millisecond)
		r.Close()
	}()
	start = time.Now()
	io.ReadAll(r)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close did not release the stall (took %v)", elapsed)
	}
}

// TestConnWriteFaults: write-direction faults land on the bytes the
// peer receives — corruption at exact offsets, resets cutting the
// stream — while the writer's own buffer is never mutated.
func TestConnWriteFaults(t *testing.T) {
	pipeThrough := func(plan Plan, payload []byte) (received []byte, writeErr error, in *Injector) {
		in = New(plan)
		a, b := net.Pipe()
		wrapped := in.Conn(a)
		done := make(chan []byte, 1)
		go func() {
			got, _ := io.ReadAll(b)
			done <- got
		}()
		_, writeErr = wrapped.Write(payload)
		wrapped.Close()
		b.SetReadDeadline(time.Now().Add(10 * time.Second))
		return <-done, writeErr, in
	}

	payload := randBytes(5, 4096)
	orig := append([]byte(nil), payload...)
	plan := Plan{Seed: 41, MeanGap: 200, Horizon: 8, Disable: onlyFault(FaultCorrupt)}
	got, err, _ := pipeThrough(plan, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("Write mutated the caller's buffer")
	}
	want := append([]byte(nil), orig...)
	for _, p := range New(plan).Schedule(0, 1) {
		want[p.Off] ^= byte(p.Arg)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("peer did not receive corruption at the scheduled write offsets")
	}

	plan = Plan{Seed: 43, MeanGap: 300, Horizon: 4, Disable: onlyFault(FaultReset)}
	resetOff := New(plan).Schedule(0, 1)[0].Off
	got, err, _ = pipeThrough(plan, randBytes(6, 4096))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past a reset = %v, want ErrInjected", err)
	}
	if int64(len(got)) != resetOff {
		t.Fatalf("peer received %d bytes, schedule resets at %d", len(got), resetOff)
	}
}

// TestMaxConnsBudget: past the budget, wrapping is a no-op — the escape
// hatch that guarantees a reconnecting client eventually gets a clean
// connection.
func TestMaxConnsBudget(t *testing.T) {
	in := New(Plan{Seed: 51, MaxConns: 2})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, ok := in.Conn(a).(*Conn); !ok {
		t.Fatal("first connection not wrapped")
	}
	if _, ok := in.Reader(bytes.NewReader(nil)).(*chaosReader); !ok {
		t.Fatal("second wrap (reader) not wrapped")
	}
	if c := in.Conn(a); c != net.Conn(a) {
		t.Fatal("third connection still wrapped past MaxConns")
	}
	if r := bytes.NewReader(nil); in.Reader(r) != io.Reader(r) {
		t.Fatal("fourth wrap (reader) still wrapped past MaxConns")
	}
	if in.Conns() != 4 {
		t.Fatalf("Conns() = %d, want 4", in.Conns())
	}
}
