// Anomaly-framework soak: a seeded "mixed" scenario (a MOAS conflict
// plus a community storm layered on the benign beacon campaign) streamed
// through the full wire path — pipeline -> broker -> server -> chaos
// proxy -> reconnecting client — with the anomaly history accumulated on
// both ends. Invariants, per seed:
//
//   - the server-side anomaly report (pipeline's AnomalyStream) is
//     bit-identical to the batch report built from the archive;
//   - a client-side AnomalyStream fed from the chaos-battered wire
//     reconstructs the same bit-identical report;
//   - every finding the server published on the anomaly channel arrived
//     at the client, and nothing else did.
//
// A failing seed prints the command that replays it alone:
//
//	go test -race -run 'TestChaosAnomalySoak' -anomaly.seed=N ./internal/chaos
package chaos_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"zombiescope/internal/beacon"
	"zombiescope/internal/chaos"
	"zombiescope/internal/experiments"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/zombie"
)

var (
	anomalySeeds = flag.Int("anomaly.seeds", 5,
		"how many seeds the anomaly soak matrix runs (seeds 1..N)")
	anomalySeed = flag.Uint64("anomaly.seed", 0,
		"replay the anomaly soak under this one seed instead of the matrix")
)

// anomalyScenarioSeed fixes the generated outbreak: the chaos seed varies
// the faults, not the data.
const anomalyScenarioSeed = 7

// anomalySoakScenario is the shared workload plus its batch reference.
type anomalySoakScenario struct {
	stream    []livefeed.SourcedRecord
	intervals []beacon.Interval
	window    zombie.Window
	batch     *zombie.AnomalyReport
}

var (
	anomalyScenarioOnce sync.Once
	anomalyScenarioVal  *anomalySoakScenario
	anomalyScenarioErr  error
)

func anomalyScenario(t *testing.T) *anomalySoakScenario {
	t.Helper()
	anomalyScenarioOnce.Do(func() {
		sc, err := experiments.RunAnomalyScenario("mixed", anomalyScenarioSeed)
		if err != nil {
			anomalyScenarioErr = err
			return
		}
		stream, err := livefeed.MergeUpdates(sc.Updates)
		if err != nil {
			anomalyScenarioErr = err
			return
		}
		dets, err := zombie.BuildAnomalyDetectors(nil, zombie.AnomalyConfig{Intervals: sc.Intervals})
		if err != nil {
			anomalyScenarioErr = err
			return
		}
		h, err := zombie.BuildHistory(sc.Updates, nil)
		if err != nil {
			anomalyScenarioErr = err
			return
		}
		anomalyScenarioVal = &anomalySoakScenario{
			stream:    stream,
			intervals: sc.Intervals,
			window:    sc.Window,
			batch:     zombie.RunAnomalyDetectors(h, sc.Window, dets, 0),
		}
	})
	if anomalyScenarioErr != nil {
		t.Fatal(anomalyScenarioErr)
	}
	for _, det := range []string{"moas", "community"} {
		if anomalyScenarioVal.batch.ByDetector[det] == 0 {
			t.Fatalf("mixed scenario produced no %s findings; the soak would prove nothing", det)
		}
	}
	return anomalyScenarioVal
}

// anomalyFindingKey flattens one batch finding for set comparison against
// the alerts delivered on the wire.
func anomalyFindingKey(a zombie.Anomaly) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%s|%v|%d|%d|%d|%s",
		a.Detector, a.Kind, a.Prefix, a.Peer.Collector, a.Peer.AS, a.Peer.Addr,
		a.Origins, a.Start.UnixNano(), a.End.UnixNano(), a.Count, a.Detail)
}

func anomalyAlertKey(ev livefeed.Event) string {
	al := ev.Anomaly
	return fmt.Sprintf("%s|%s|%s|%s|%d|%s|%v|%d|%d|%d|%s",
		al.Detector, al.Kind, al.Prefix, ev.Collector, al.PeerAS, al.Peer,
		al.Origins, al.Start.UnixNano(), al.End.UnixNano(), al.Count, al.Detail)
}

// TestChaosAnomalySoak runs the anomaly wire path under each seed of the
// matrix. The name matches the chaos CI job's -run Chaos filter, so it
// rides the existing soak job.
func TestChaosAnomalySoak(t *testing.T) {
	sc := anomalyScenario(t)
	seeds := make([]uint64, 0, *anomalySeeds)
	if *anomalySeed != 0 {
		seeds = append(seeds, *anomalySeed)
	} else {
		for i := 0; i < *anomalySeeds; i++ {
			seeds = append(seeds, uint64(i+1))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAnomalySoakSeed(t, sc, seed)
		})
	}
}

func runAnomalySoakSeed(t *testing.T, sc *anomalySoakScenario, seed uint64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\nreplay: go test -race -run 'TestChaosAnomalySoak' -anomaly.seed=%d ./internal/chaos",
			seed, fmt.Sprintf(format, args...), seed)
	}

	// Server side: pipeline in anomaly mode behind a chaos listener. The
	// rings cover the whole scenario so resume never loses events.
	broker := livefeed.NewBroker(livefeed.Config{RingSize: 1 << 14, ReplaySize: 1 << 14})
	defer broker.Close()
	pipe := livefeed.NewPipeline(broker, sc.intervals, 0)
	if err := pipe.EnableAnomalies(nil, zombie.AnomalyConfig{Intervals: sc.intervals}); err != nil {
		t.Fatal(err)
	}
	srv := &livefeed.Server{
		Broker:            broker,
		Name:              "anomaly-soak",
		HeartbeatInterval: 30 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(soakPlan(seed))
	go srv.Serve(inj.Listener(l))
	defer srv.Close()

	// Client side: a reconnecting consumer rebuilding its own anomaly
	// history from the raw update events, and logging every alert the
	// server publishes on the anomaly channel.
	var mu sync.Mutex
	var seqs []uint64
	clientStream := zombie.NewAnomalyStream()
	clientAlerts := make(map[string]int)
	var onEventErr error
	client := &livefeed.Client{
		Addr:             l.Addr().String(),
		MinBackoff:       time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		HandshakeTimeout: 400 * time.Millisecond,
		IdleTimeout:      100 * time.Millisecond,
		FromStart:        true,
		OnEvent: func(ev livefeed.Event) {
			mu.Lock()
			defer mu.Unlock()
			seqs = append(seqs, ev.Seq)
			if onEventErr != nil {
				return
			}
			switch ev.Channel {
			case livefeed.ChannelUpdates:
				rec, err := ev.Record()
				if err != nil {
					onEventErr = fmt.Errorf("seq %d: decode raw record: %w", ev.Seq, err)
					return
				}
				if err := clientStream.Observe(ev.Collector, rec); err != nil {
					onEventErr = fmt.Errorf("seq %d: anomaly stream observe: %w", ev.Seq, err)
				}
			case livefeed.ChannelAnomaly:
				if ev.Anomaly == nil {
					onEventErr = fmt.Errorf("seq %d: anomaly event without payload", ev.Seq)
					return
				}
				clientAlerts[anomalyAlertKey(ev)]++
			}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clientDone := make(chan error, 1)
	go func() { clientDone <- client.Run(ctx) }()

	// Drive the archive through the pipeline, then run the detectors:
	// DetectAnomalies seals the server-side stream and publishes every
	// finding on the anomaly channel.
	for _, sr := range sc.stream {
		pipe.Ingest(sr)
	}
	pipe.Flush(sc.window.To)
	rep := pipe.DetectAnomalies(sc.window)
	if rep == nil {
		fail("DetectAnomalies returned nil with anomaly mode enabled")
	}

	// Invariant 1: server-side streaming == batch, bit-identical.
	if !reflect.DeepEqual(rep.ByDetector, sc.batch.ByDetector) {
		fail("server-side counts diverge from batch: %v != %v", rep.ByDetector, sc.batch.ByDetector)
	}
	if !reflect.DeepEqual(rep.Findings, sc.batch.Findings) {
		fail("server-side findings diverge from batch reference")
	}

	head := broker.Seq()
	if head == 0 {
		fail("nothing published")
	}

	// Wait for the client to survive the chaos and drain to head.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		mu.Lock()
		n := len(seqs)
		caughtUp := n > 0 && seqs[n-1] == head
		evErr := onEventErr
		mu.Unlock()
		if evErr != nil {
			fail("%v", evErr)
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			fail("client never drained to head %d (delivered %d events across %d connections)",
				head, n, inj.Conns())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-clientDone; !errors.Is(err, context.Canceled) {
		fail("client Run returned %v, want context.Canceled", err)
	}

	mu.Lock()
	defer mu.Unlock()

	// Invariant 2: the client-side history, reassembled from the
	// chaos-battered wire, yields the batch report bit-identically.
	dets, err := zombie.BuildAnomalyDetectors(nil, zombie.AnomalyConfig{Intervals: sc.intervals})
	if err != nil {
		t.Fatal(err)
	}
	clientRep := zombie.RunAnomalyDetectors(clientStream.Seal(), sc.window, dets, 0)
	if !reflect.DeepEqual(clientRep.ByDetector, sc.batch.ByDetector) {
		fail("client-side counts diverge from batch: %v != %v", clientRep.ByDetector, sc.batch.ByDetector)
	}
	if !reflect.DeepEqual(clientRep.Findings, sc.batch.Findings) {
		fail("client-side findings diverge from batch reference")
	}

	// Invariant 3: the anomaly channel delivered exactly the batch
	// findings, each exactly once.
	want := make(map[string]int, len(sc.batch.Findings))
	for _, a := range sc.batch.Findings {
		want[anomalyFindingKey(a)]++
	}
	for k, n := range want {
		if clientAlerts[k] != n {
			fail("alert %q delivered %d times, want %d", k, clientAlerts[k], n)
		}
	}
	for k, n := range clientAlerts {
		if want[k] == 0 {
			fail("unexpected alert %q delivered %d times", k, n)
		}
	}

	recordFired(inj.Fired())
	t.Logf("seed %d: head=%d conns=%d findings=%v fired=%v",
		seed, head, inj.Conns(), rep.ByDetector, inj.Fired())
}
