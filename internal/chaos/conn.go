package chaos

import (
	"net"
	"sync"
	"time"
)

// Conn is a net.Conn executing a scripted fault schedule on each
// direction. All faults are byte-exact: transfers are bounded so the
// scheduled offset of a corruption or reset is hit precisely, which is
// what makes a failing seed replayable.
type Conn struct {
	nc  net.Conn
	inj *Injector

	rd, wr direction

	closeOnce sync.Once
	closed    chan struct{}
}

// Read applies due pre-op faults, bounds the read at the next fault
// point, and corrupts the scheduled byte after it arrives.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.nc.Read(p)
	}
	limit, corrupt, mask, ok := c.rd.plan(c.inj, c.closed, len(p))
	if !ok {
		c.Close()
		return 0, ErrInjected
	}
	n, err := c.nc.Read(p[:limit])
	if corrupt && n > 0 {
		p[0] ^= mask
	}
	c.rd.advance(c.inj, n, corrupt)
	return n, err
}

// Write moves p in schedule-bounded chunks so mid-buffer faults (a
// reset halfway through a frame, one corrupted byte) land at their
// exact offsets. Short-op points fragment the write but never lose
// bytes: the loop continues until p is fully written or the connection
// dies.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		rest := p[written:]
		limit, corrupt, mask, ok := c.wr.plan(c.inj, c.closed, len(rest))
		if !ok {
			c.Close()
			return written, ErrInjected
		}
		var n int
		var err error
		if corrupt {
			// Write the flipped byte from a copy; the caller's buffer
			// must not be mutated.
			n, err = c.nc.Write([]byte{rest[0] ^ mask})
		} else {
			n, err = c.nc.Write(rest[:limit])
		}
		c.wr.advance(c.inj, n, corrupt)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close releases any in-flight stall before closing the wrapped conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.nc.Close()
}

func (c *Conn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }
