package bgp

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestPrefixRoundTripIPv4(t *testing.T) {
	cases := []string{"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "192.0.2.128/25", "203.0.113.7/32"}
	for _, s := range cases {
		p := mustPrefix(t, s)
		b, err := AppendPrefix(nil, p)
		if err != nil {
			t.Fatalf("AppendPrefix(%s): %v", s, err)
		}
		got, n, err := DecodePrefix(b, AFIIPv4)
		if err != nil {
			t.Fatalf("DecodePrefix(%s): %v", s, err)
		}
		if n != len(b) {
			t.Errorf("%s: consumed %d of %d bytes", s, n, len(b))
		}
		if got != p {
			t.Errorf("%s: round-trip got %s", s, got)
		}
	}
}

func TestPrefixRoundTripIPv6(t *testing.T) {
	cases := []string{"::/0", "2a0d:3dc1::/32", "2a0d:3dc1:1851::/48", "2001:db8::/48", "2001:db8::1/128"}
	for _, s := range cases {
		p := mustPrefix(t, s)
		b, err := AppendPrefix(nil, p)
		if err != nil {
			t.Fatalf("AppendPrefix(%s): %v", s, err)
		}
		got, n, err := DecodePrefix(b, AFIIPv6)
		if err != nil {
			t.Fatalf("DecodePrefix(%s): %v", s, err)
		}
		if n != len(b) {
			t.Errorf("%s: consumed %d of %d bytes", s, n, len(b))
		}
		if got != p {
			t.Errorf("%s: round-trip got %s", s, got)
		}
	}
}

func TestPrefixEncodingIsMinimal(t *testing.T) {
	// A /48 must occupy exactly 1 + 6 bytes on the wire.
	b, err := AppendPrefix(nil, mustPrefix(t, "2a0d:3dc1:1851::/48"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 7 {
		t.Errorf("encoded /48 occupies %d bytes, want 7", len(b))
	}
	// A /0 is the single length byte.
	b, err = AppendPrefix(nil, mustPrefix(t, "0.0.0.0/0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 {
		t.Errorf("encoded /0 occupies %d bytes, want 1", len(b))
	}
}

func TestAppendPrefixMasksHostBits(t *testing.T) {
	p := netip.PrefixFrom(netip.MustParseAddr("192.0.2.255"), 24)
	b, err := AppendPrefix(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodePrefix(b, AFIIPv4)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustPrefix(t, "192.0.2.0/24"); got != want {
		t.Errorf("got %s, want masked %s", got, want)
	}
}

func TestDecodePrefixErrors(t *testing.T) {
	if _, _, err := DecodePrefix(nil, AFIIPv4); !errors.Is(err, ErrBadPrefix) {
		t.Errorf("empty input: err = %v, want ErrBadPrefix", err)
	}
	if _, _, err := DecodePrefix([]byte{33, 1, 2, 3, 4, 5}, AFIIPv4); !errors.Is(err, ErrBadPrefix) {
		t.Errorf("/33 v4: err = %v, want ErrBadPrefix", err)
	}
	if _, _, err := DecodePrefix([]byte{129}, AFIIPv6); !errors.Is(err, ErrBadPrefix) {
		t.Errorf("/129 v6: err = %v, want ErrBadPrefix", err)
	}
	if _, _, err := DecodePrefix([]byte{24, 1}, AFIIPv4); !errors.Is(err, ErrBadPrefix) {
		t.Errorf("truncated body: err = %v, want ErrBadPrefix", err)
	}
	if _, _, err := DecodePrefix([]byte{8, 10}, AFI(9)); !errors.Is(err, ErrBadAddrFamily) {
		t.Errorf("bad afi: err = %v, want ErrBadAddrFamily", err)
	}
}

func TestDecodePrefixesRejectsTrailingGarbage(t *testing.T) {
	b, err := AppendPrefix(nil, netip.MustParsePrefix("192.0.2.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, 200) // bogus length byte with no body possible
	if _, err := DecodePrefixes(b, AFIIPv4); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestPrefixQuickRoundTrip is a property test: any masked prefix encodes
// and decodes to itself.
func TestPrefixQuickRoundTrip(t *testing.T) {
	f := func(addr [16]byte, bitsRaw uint8, v4 bool) bool {
		var p netip.Prefix
		var afi AFI
		if v4 {
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte(addr[:4])), int(bitsRaw)%33)
			afi = AFIIPv4
		} else {
			p = netip.PrefixFrom(netip.AddrFrom16(addr), int(bitsRaw)%129)
			afi = AFIIPv6
		}
		p = p.Masked()
		b, err := AppendPrefix(nil, p)
		if err != nil {
			return false
		}
		got, n, err := DecodePrefix(b, afi)
		return err == nil && n == len(b) && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestPrefixAFI(t *testing.T) {
	if got := PrefixAFI(netip.MustParsePrefix("10.0.0.0/8")); got != AFIIPv4 {
		t.Errorf("v4 prefix reported %v", got)
	}
	if got := PrefixAFI(netip.MustParsePrefix("2a0d:3dc1::/32")); got != AFIIPv6 {
		t.Errorf("v6 prefix reported %v", got)
	}
}

func TestDecodePrefixesMany(t *testing.T) {
	want := []netip.Prefix{
		mustPrefix(t, "10.0.0.0/8"),
		mustPrefix(t, "192.0.2.0/24"),
		mustPrefix(t, "203.0.113.0/25"),
	}
	b, err := AppendPrefixes(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePrefixes(b, AFIIPv4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
