package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPathAttributesRoundTripAll(t *testing.T) {
	pa := PathAttributes{
		HasOrigin:       true,
		Origin:          OriginEGP,
		ASPath:          NewASPath(4637, 1299, 25091, 8298, 210312),
		NextHop:         netip.MustParseAddr("192.0.2.1"),
		HasMED:          true,
		MED:             1234,
		HasLocalPref:    true,
		LocalPref:       250,
		AtomicAggregate: true,
		Aggregator:      &Aggregator{ASN: 210312, Addr: netip.MustParseAddr("10.19.29.192")},
		Communities:     []Community{NewCommunity(8298, 1), NewCommunity(25091, 2)},
		MPReach: &MPReachNLRI{
			AFI: AFIIPv6, SAFI: SAFIUnicast,
			NextHop: netip.MustParseAddr("2001:db8::1"),
			NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
		},
		MPUnreach: &MPUnreachNLRI{
			AFI: AFIIPv6, SAFI: SAFIUnicast,
			Withdrawn: []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:2233::/48")},
		},
		Unknown: []RawAttr{{Flags: FlagOptional | FlagTransitive, Type: 32, Value: []byte{1, 2, 3}}},
	}
	wire, err := pa.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePathAttributes(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pa) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, pa)
	}
}

func TestDecodePathAttributesMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":      {0x40},
		"short value":           {0x40, AttrOrigin, 5, 0},
		"origin wrong len":      {0x40, AttrOrigin, 2, 0, 0},
		"nexthop wrong len":     {0x40, AttrNextHop, 3, 1, 2, 3},
		"med wrong len":         {0x80, AttrMED, 2, 0, 1},
		"localpref wrong len":   {0x40, AttrLocalPref, 1, 9},
		"atomic aggregate len":  {0x40, AttrAtomicAggregate, 1, 0},
		"aggregator wrong len":  {0xc0, AttrAggregator, 6, 0, 0, 0, 1, 10, 0},
		"communities wrong len": {0xc0, AttrCommunities, 3, 0, 0, 1},
		"mp_reach too short":    {0x80, AttrMPReachNLRI, 2, 0, 2},
		"mp_reach bad nh len":   {0x80, AttrMPReachNLRI, 6, 0, 2, 1, 3, 0, 0},
		"mp_unreach too short":  {0x80, AttrMPUnreachNLRI, 2, 0, 2},
		"truncated ext length":  {0x90, AttrASPath, 1},
	}
	for name, wire := range cases {
		if _, err := DecodePathAttributes(wire); err == nil {
			t.Errorf("%s: malformed attribute accepted", name)
		}
	}
}

// TestDecodeNeverPanics: arbitrary bytes must produce an error or a
// result, never a panic — the property a codec facing untrusted archive
// data must hold.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeUpdate panicked on %x: %v", data, r)
				}
			}()
			_, _ = DecodeUpdate(data)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodePathAttributes panicked on %x: %v", data, r)
				}
			}()
			_, _ = DecodePathAttributes(data)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeASPath panicked on %x: %v", data, r)
				}
			}()
			_, _ = DecodeASPath(data)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// TestDecodeValidHeaderRandomBody: a valid header with random body bytes
// must also never panic.
func TestDecodeValidHeaderRandomBody(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) > MaxMessageLen-HeaderLen {
			body = body[:MaxMessageLen-HeaderLen]
		}
		msg := appendHeader(nil, uint16(HeaderLen+len(body)), MsgUpdate)
		msg = append(msg, body...)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panicked on %x: %v", body, r)
			}
		}()
		_, _ = DecodeUpdate(msg)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "INCOMPLETE" {
		t.Error("origin strings wrong")
	}
	if Origin(9).String() != "Origin(9)" {
		t.Error("unknown origin string wrong")
	}
}

func TestMessageTypeString(t *testing.T) {
	cases := map[MessageType]string{
		MsgOpen: "OPEN", MsgUpdate: "UPDATE", MsgNotification: "NOTIFICATION",
		MsgKeepalive: "KEEPALIVE", MessageType(9): "UNKNOWN(9)",
	}
	for mt, want := range cases {
		if mt.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(mt), mt.String(), want)
		}
	}
}

func TestAFIString(t *testing.T) {
	if AFIIPv4.String() != "IPv4" || AFIIPv6.String() != "IPv6" || AFI(7).String() != "AFI(7)" {
		t.Error("AFI strings wrong")
	}
}

func TestASNString(t *testing.T) {
	if ASN(210312).String() != "AS210312" {
		t.Errorf("ASN string = %q", ASN(210312).String())
	}
}
