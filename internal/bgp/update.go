package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Update is a decoded BGP UPDATE message (RFC 4271 §4.3). IPv4 routes ride
// in Withdrawn/NLRI; other families ride in the MP_REACH_NLRI and
// MP_UNREACH_NLRI attributes.
type Update struct {
	Withdrawn []netip.Prefix // IPv4 withdrawn routes
	Attrs     PathAttributes
	NLRI      []netip.Prefix // IPv4 announced routes
}

// Announced returns every prefix announced by the update across address
// families (top-level NLRI plus MP_REACH).
func (u *Update) Announced() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(u.NLRI))
	out = append(out, u.NLRI...)
	if u.Attrs.MPReach != nil {
		out = append(out, u.Attrs.MPReach.NLRI...)
	}
	return out
}

// WithdrawnAll returns every prefix withdrawn by the update across address
// families (top-level withdrawn routes plus MP_UNREACH).
func (u *Update) WithdrawnAll() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(u.Withdrawn))
	out = append(out, u.Withdrawn...)
	if u.Attrs.MPUnreach != nil {
		out = append(out, u.Attrs.MPUnreach.Withdrawn...)
	}
	return out
}

// AppendWireFormat appends the complete UPDATE message including the BGP
// common header.
func (u *Update) AppendWireFormat(dst []byte) ([]byte, error) {
	body, err := u.appendBody(nil)
	if err != nil {
		return dst, err
	}
	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return dst, fmt.Errorf("%w: UPDATE of %d bytes exceeds %d", ErrBadLength, total, MaxMessageLen)
	}
	dst = appendHeader(dst, uint16(total), MsgUpdate)
	return append(dst, body...), nil
}

func (u *Update) appendBody(dst []byte) ([]byte, error) {
	wd, err := AppendPrefixes(nil, u.Withdrawn)
	if err != nil {
		return dst, err
	}
	for _, p := range u.Withdrawn {
		if !p.Addr().Is4() {
			return dst, fmt.Errorf("%w: top-level withdrawn route %s is not IPv4", ErrBadPrefix, p)
		}
	}
	attrs, err := u.Attrs.AppendWireFormat(nil)
	if err != nil {
		return dst, err
	}
	for _, p := range u.NLRI {
		if !p.Addr().Is4() {
			return dst, fmt.Errorf("%w: top-level NLRI %s is not IPv4", ErrBadPrefix, p)
		}
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)
	return AppendPrefixes(dst, u.NLRI)
}

func appendHeader(dst []byte, length uint16, typ MessageType) []byte {
	for i := 0; i < MarkerLen; i++ {
		dst = append(dst, 0xff)
	}
	dst = binary.BigEndian.AppendUint16(dst, length)
	return append(dst, byte(typ))
}

// DecodeHeader parses and validates the BGP common header at the start of
// b, returning the declared total message length and type.
func DecodeHeader(b []byte) (length int, typ MessageType, err error) {
	if len(b) < HeaderLen {
		return 0, 0, fmt.Errorf("%w: header needs %d bytes, have %d", ErrShortMessage, HeaderLen, len(b))
	}
	for i := 0; i < MarkerLen; i++ {
		if b[i] != 0xff {
			return 0, 0, ErrBadMarker
		}
	}
	length = int(binary.BigEndian.Uint16(b[MarkerLen:]))
	typ = MessageType(b[MarkerLen+2])
	if length < HeaderLen || length > MaxMessageLen {
		return 0, 0, fmt.Errorf("%w: declared length %d", ErrBadLength, length)
	}
	return length, typ, nil
}

// DecodeUpdate parses a full UPDATE message (header included) from b,
// which must contain exactly one message.
func DecodeUpdate(b []byte) (*Update, error) {
	length, typ, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if typ != MsgUpdate {
		return nil, fmt.Errorf("%w: got %s, want UPDATE", ErrUnknownType, typ)
	}
	if len(b) < length {
		return nil, fmt.Errorf("%w: message declares %d bytes, have %d", ErrShortMessage, length, len(b))
	}
	return DecodeUpdateBody(b[HeaderLen:length])
}

// DecodeUpdateBody parses an UPDATE body (after the common header).
func DecodeUpdateBody(b []byte) (*Update, error) {
	u := &Update{}
	if err := decodeUpdateBodyInto(u, nil, 0, b); err != nil {
		return nil, err
	}
	return u, nil
}

// decodeUpdateBodyInto is the shared UPDATE body parse, filling u in
// place. s and df thread the scratch workspace and decode flags down to
// the attribute walk (nil/0 for the allocating retain path).
func decodeUpdateBodyInto(u *Update, s *Scratch, df DecodeFlags, b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: missing withdrawn routes length", ErrShortMessage)
	}
	wdLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < wdLen {
		return fmt.Errorf("%w: withdrawn routes need %d bytes, have %d", ErrShortMessage, wdLen, len(b))
	}
	wd, err := appendDecodedPrefixes(u.Withdrawn, b[:wdLen], AFIIPv4)
	if err != nil {
		return err
	}
	u.Withdrawn = wd
	b = b[wdLen:]
	if len(b) < 2 {
		return fmt.Errorf("%w: missing path attributes length", ErrShortMessage)
	}
	attrLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < attrLen {
		return fmt.Errorf("%w: attributes need %d bytes, have %d", ErrShortMessage, attrLen, len(b))
	}
	if err := decodePathAttributesInto(&u.Attrs, s, df, b[:attrLen]); err != nil {
		return err
	}
	nlri, err := appendDecodedPrefixes(u.NLRI, b[attrLen:], AFIIPv4)
	if err != nil {
		return err
	}
	u.NLRI = nlri
	return nil
}

// NewKeepalive returns the wire encoding of a KEEPALIVE message.
func NewKeepalive() []byte {
	return appendHeader(nil, HeaderLen, MsgKeepalive)
}
