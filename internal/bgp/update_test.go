package bgp

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
)

func v6Update(t *testing.T) *Update {
	t.Helper()
	return &Update{
		Attrs: PathAttributes{
			HasOrigin: true,
			Origin:    OriginIGP,
			ASPath:    NewASPath(4637, 1299, 25091, 8298, 210312),
			Aggregator: &Aggregator{
				ASN:  210312,
				Addr: netip.MustParseAddr("10.19.29.192"),
			},
			Communities: []Community{NewCommunity(8298, 100)},
			MPReach: &MPReachNLRI{
				AFI:     AFIIPv6,
				SAFI:    SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
			},
		},
	}
}

func TestUpdateRoundTripIPv6Announce(t *testing.T) {
	u := v6Update(t)
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
		t.Errorf("AS path: got %s, want %s", got.Attrs.ASPath, u.Attrs.ASPath)
	}
	if got.Attrs.Aggregator == nil || *got.Attrs.Aggregator != *u.Attrs.Aggregator {
		t.Errorf("aggregator: got %+v, want %+v", got.Attrs.Aggregator, u.Attrs.Aggregator)
	}
	if !reflect.DeepEqual(got.Attrs.Communities, u.Attrs.Communities) {
		t.Errorf("communities: got %v", got.Attrs.Communities)
	}
	if got.Attrs.MPReach == nil {
		t.Fatal("MP_REACH_NLRI missing after round trip")
	}
	if got.Attrs.MPReach.NextHop != u.Attrs.MPReach.NextHop {
		t.Errorf("next hop: got %s", got.Attrs.MPReach.NextHop)
	}
	if !reflect.DeepEqual(got.Attrs.MPReach.NLRI, u.Attrs.MPReach.NLRI) {
		t.Errorf("NLRI: got %v", got.Attrs.MPReach.NLRI)
	}
	if ann := got.Announced(); len(ann) != 1 || ann[0] != u.Attrs.MPReach.NLRI[0] {
		t.Errorf("Announced() = %v", ann)
	}
}

func TestUpdateRoundTripIPv6Withdraw(t *testing.T) {
	u := &Update{
		Attrs: PathAttributes{
			MPUnreach: &MPUnreachNLRI{
				AFI:       AFIIPv6,
				SAFI:      SAFIUnicast,
				Withdrawn: []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
			},
		},
	}
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	wd := got.WithdrawnAll()
	if len(wd) != 1 || wd[0] != u.Attrs.MPUnreach.Withdrawn[0] {
		t.Errorf("WithdrawnAll() = %v", wd)
	}
	if len(got.Announced()) != 0 {
		t.Errorf("withdraw-only update announced %v", got.Announced())
	}
}

func TestUpdateRoundTripIPv4(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		Attrs: PathAttributes{
			HasOrigin:       true,
			Origin:          OriginIncomplete,
			ASPath:          NewASPath(12654, 210312),
			NextHop:         netip.MustParseAddr("192.0.2.1"),
			HasMED:          true,
			MED:             50,
			HasLocalPref:    true,
			LocalPref:       120,
			AtomicAggregate: true,
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("withdrawn: got %v", got.Withdrawn)
	}
	if !reflect.DeepEqual(got.NLRI, u.NLRI) {
		t.Errorf("nlri: got %v", got.NLRI)
	}
	if got.Attrs.NextHop != u.Attrs.NextHop {
		t.Errorf("next hop: got %v", got.Attrs.NextHop)
	}
	if !got.Attrs.HasMED || got.Attrs.MED != 50 {
		t.Errorf("MED: got %v/%v", got.Attrs.HasMED, got.Attrs.MED)
	}
	if !got.Attrs.HasLocalPref || got.Attrs.LocalPref != 120 {
		t.Errorf("LocalPref: got %v/%v", got.Attrs.HasLocalPref, got.Attrs.LocalPref)
	}
	if !got.Attrs.AtomicAggregate {
		t.Error("ATOMIC_AGGREGATE lost")
	}
}

func TestUpdateUnknownAttrRoundTrip(t *testing.T) {
	u := &Update{
		Attrs: PathAttributes{
			Unknown: []RawAttr{{Flags: FlagOptional | FlagTransitive, Type: 32, Value: []byte{0, 0, 1, 1, 0, 0, 0, 2, 0, 0, 0, 3}}},
		},
	}
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Attrs.Unknown, u.Attrs.Unknown) {
		t.Errorf("unknown attrs: got %+v", got.Attrs.Unknown)
	}
}

func TestUpdateExtendedLengthAttribute(t *testing.T) {
	// Build an AS path long enough that the attribute needs the extended
	// length encoding (> 255 bytes of value).
	asns := make([]ASN, 120) // 2 + 480 bytes > 255
	for i := range asns {
		asns[i] = ASN(64500 + i)
	}
	u := &Update{Attrs: PathAttributes{ASPath: NewASPath(asns...)}}
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
		t.Error("extended-length AS_PATH round trip failed")
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 5)); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short header: %v", err)
	}
	b := NewKeepalive()
	b[0] = 0 // corrupt marker
	if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadMarker) {
		t.Errorf("bad marker: %v", err)
	}
	b = NewKeepalive()
	b[16] = 0xff // absurd length
	b[17] = 0xff
	if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
}

func TestDecodeUpdateRejectsNonUpdate(t *testing.T) {
	if _, err := DecodeUpdate(NewKeepalive()); !errors.Is(err, ErrUnknownType) {
		t.Errorf("keepalive accepted as update: %v", err)
	}
}

func TestDecodeUpdateTruncated(t *testing.T) {
	u := v6Update(t)
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeUpdate(b[:len(b)-3]); err == nil {
		t.Error("truncated update accepted")
	}
}

func TestUpdateRejectsV6TopLevel(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{netip.MustParsePrefix("2001:db8::/48")}}
	if _, err := u.AppendWireFormat(nil); err == nil {
		t.Error("IPv6 prefix accepted in top-level NLRI")
	}
	u = &Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("2001:db8::/48")}}
	if _, err := u.AppendWireFormat(nil); err == nil {
		t.Error("IPv6 prefix accepted in top-level withdrawn routes")
	}
}

func TestKeepaliveHeader(t *testing.T) {
	b := NewKeepalive()
	length, typ, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if length != HeaderLen || typ != MsgKeepalive {
		t.Errorf("got length=%d type=%v", length, typ)
	}
}

func TestCommunityString(t *testing.T) {
	if got := NewCommunity(8298, 100).String(); got != "8298:100" {
		t.Errorf("community = %q", got)
	}
}

func TestMPReach32ByteNextHop(t *testing.T) {
	// Hand-encode an MP_REACH value with global + link-local next hop and
	// verify the decoder keeps the global address.
	global := netip.MustParseAddr("2001:db8::1")
	ll := netip.MustParseAddr("fe80::1")
	val := []byte{0, 2, 1, 32}
	g := global.As16()
	l := ll.As16()
	val = append(val, g[:]...)
	val = append(val, l[:]...)
	val = append(val, 0) // reserved
	p, _ := AppendPrefix(nil, netip.MustParsePrefix("2a0d:3dc1::/32"))
	val = append(val, p...)
	m := &MPReachNLRI{}
	if err := decodeMPReachInto(m, val); err != nil {
		t.Fatal(err)
	}
	if m.NextHop != global {
		t.Errorf("next hop = %s, want %s", m.NextHop, global)
	}
}
