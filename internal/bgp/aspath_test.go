package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestASPathString(t *testing.T) {
	p := NewASPath(4637, 1299, 25091, 8298, 210312)
	if got, want := p.String(), "4637 1299 25091 8298 210312"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	withSet := ASPath{Segments: []PathSegment{
		{Type: ASSequence, ASNs: []ASN{64500}},
		{Type: ASSet, ASNs: []ASN{64501, 64502}},
	}}
	if got, want := withSet.String(), "64500 {64501,64502}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestASPathPrepend(t *testing.T) {
	p := NewASPath(8298, 210312)
	q := p.Prepend(25091)
	if got, want := q.String(), "25091 8298 210312"; got != want {
		t.Errorf("Prepend: got %q, want %q", got, want)
	}
	// Original must be unchanged (prepend is copy-on-write).
	if got, want := p.String(), "8298 210312"; got != want {
		t.Errorf("Prepend mutated receiver: %q", got)
	}
	// Prepend onto empty path.
	var empty ASPath
	if got, want := empty.Prepend(64500).String(), "64500"; got != want {
		t.Errorf("Prepend empty: got %q, want %q", got, want)
	}
	// Prepend when the first segment is a set creates a new sequence.
	withSet := ASPath{Segments: []PathSegment{{Type: ASSet, ASNs: []ASN{64501}}}}
	if got, want := withSet.Prepend(64500).String(), "64500 {64501}"; got != want {
		t.Errorf("Prepend before set: got %q, want %q", got, want)
	}
}

func TestASPathLength(t *testing.T) {
	p := ASPath{Segments: []PathSegment{
		{Type: ASSequence, ASNs: []ASN{1, 2, 3}},
		{Type: ASSet, ASNs: []ASN{4, 5, 6, 7}},
		{Type: ASSequence, ASNs: []ASN{8}},
	}}
	// 3 sequence hops + 1 for the set + 1 sequence hop.
	if got := p.Length(); got != 5 {
		t.Errorf("Length() = %d, want 5", got)
	}
	var empty ASPath
	if got := empty.Length(); got != 0 {
		t.Errorf("empty Length() = %d, want 0", got)
	}
}

func TestASPathOriginAndContains(t *testing.T) {
	p := NewASPath(4637, 1299, 210312)
	origin, ok := p.Origin()
	if !ok || origin != 210312 {
		t.Errorf("Origin() = %v, %v; want 210312, true", origin, ok)
	}
	if !p.Contains(1299) || p.Contains(9999) {
		t.Error("Contains misbehaves")
	}
	var empty ASPath
	if _, ok := empty.Origin(); ok {
		t.Error("empty path reported an origin")
	}
}

func TestASPathWireRoundTrip(t *testing.T) {
	paths := []ASPath{
		{},
		NewASPath(210312),
		NewASPath(4637, 1299, 25091, 8298, 210312),
		{Segments: []PathSegment{
			{Type: ASSequence, ASNs: []ASN{64500, 4200000000}},
			{Type: ASSet, ASNs: []ASN{64501, 64502, 64503}},
		}},
	}
	for _, p := range paths {
		b, err := p.AppendWireFormat(nil)
		if err != nil {
			t.Fatalf("encode %s: %v", p, err)
		}
		got, err := DecodeASPath(b)
		if err != nil {
			t.Fatalf("decode %s: %v", p, err)
		}
		if !got.Equal(p) {
			t.Errorf("round trip: got %s, want %s", got, p)
		}
	}
}

func TestASPath4ByteEncoding(t *testing.T) {
	// A single-AS sequence must occupy 2 + 4 bytes (4-octet ASNs).
	b, err := NewASPath(4200000000).AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 6 {
		t.Errorf("wire length = %d, want 6", len(b))
	}
}

func TestDecodeASPathErrors(t *testing.T) {
	cases := [][]byte{
		{2},                /* truncated header */
		{9, 1, 0, 0, 0, 1}, /* bad segment type */
		{2, 2, 0, 0, 0, 1}, /* count says 2, one ASN present */
	}
	for i, b := range cases {
		if _, err := DecodeASPath(b); err == nil {
			t.Errorf("case %d: malformed AS_PATH accepted", i)
		}
	}
}

func TestASPathEqual(t *testing.T) {
	a := NewASPath(1, 2, 3)
	if !a.Equal(NewASPath(1, 2, 3)) {
		t.Error("identical paths not equal")
	}
	if a.Equal(NewASPath(1, 2)) || a.Equal(NewASPath(3, 2, 1)) {
		t.Error("different paths reported equal")
	}
	set := ASPath{Segments: []PathSegment{{Type: ASSet, ASNs: []ASN{1, 2, 3}}}}
	if a.Equal(set) {
		t.Error("sequence equal to set")
	}
}

// Property: any generated path round-trips through the wire format.
func TestASPathQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		asns := make([]ASN, len(raw))
		for i, v := range raw {
			asns[i] = ASN(v)
		}
		// Split into a sequence and optionally a set.
		k := int(split) % len(asns)
		var p ASPath
		if k > 0 {
			p.Segments = append(p.Segments, PathSegment{Type: ASSequence, ASNs: asns[:k]})
		}
		if len(asns[k:]) > 0 {
			p.Segments = append(p.Segments, PathSegment{Type: ASSet, ASNs: asns[k:]})
		}
		b, err := p.AppendWireFormat(nil)
		if err != nil {
			return false
		}
		got, err := DecodeASPath(b)
		return err == nil && got.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
