package bgp

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strings"
)

// SegmentType identifies an AS_PATH segment kind (RFC 4271 §4.3).
type SegmentType uint8

// AS_PATH segment types.
const (
	ASSet      SegmentType = 1
	ASSequence SegmentType = 2
)

// PathSegment is one segment of an AS_PATH attribute.
type PathSegment struct {
	Type SegmentType
	ASNs []ASN
}

// ASPath is an ordered list of path segments. The zero value is an empty
// path, valid for locally-originated routes.
type ASPath struct {
	Segments []PathSegment
}

// NewASPath builds a single AS_SEQUENCE path from the given ASNs, with the
// most recent (nearest) AS first, as on the wire.
func NewASPath(asns ...ASN) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	return ASPath{Segments: []PathSegment{{Type: ASSequence, ASNs: slices.Clone(asns)}}}
}

// Prepend returns a copy of the path with asn prepended to the leading
// AS_SEQUENCE (creating one if needed), as a router does when exporting a
// route to an eBGP neighbor.
func (p ASPath) Prepend(asn ASN) ASPath {
	segs := make([]PathSegment, 0, len(p.Segments)+1)
	if len(p.Segments) > 0 && p.Segments[0].Type == ASSequence {
		first := PathSegment{Type: ASSequence, ASNs: make([]ASN, 0, len(p.Segments[0].ASNs)+1)}
		first.ASNs = append(first.ASNs, asn)
		first.ASNs = append(first.ASNs, p.Segments[0].ASNs...)
		segs = append(segs, first)
		for _, s := range p.Segments[1:] {
			segs = append(segs, PathSegment{Type: s.Type, ASNs: slices.Clone(s.ASNs)})
		}
	} else {
		segs = append(segs, PathSegment{Type: ASSequence, ASNs: []ASN{asn}})
		for _, s := range p.Segments {
			segs = append(segs, PathSegment{Type: s.Type, ASNs: slices.Clone(s.ASNs)})
		}
	}
	return ASPath{Segments: segs}
}

// Length returns the AS-path length used by the BGP decision process: the
// number of ASNs in sequences, with each AS_SET counting as one.
func (p ASPath) Length() int {
	n := 0
	for _, s := range p.Segments {
		if s.Type == ASSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// ASNs returns all AS numbers in path order (sets flattened in order).
func (p ASPath) ASNs() []ASN {
	var out []ASN
	for _, s := range p.Segments {
		out = append(out, s.ASNs...)
	}
	return out
}

// Origin returns the last (originating) ASN of the path, or false if the
// path is empty.
func (p ASPath) Origin() (ASN, bool) {
	asns := p.ASNs()
	if len(asns) == 0 {
		return 0, false
	}
	return asns[len(asns)-1], true
}

// Contains reports whether the path traverses asn.
func (p ASPath) Contains(asn ASN) bool {
	for _, s := range p.Segments {
		if slices.Contains(s.ASNs, asn) {
			return true
		}
	}
	return false
}

// Equal reports whether two paths are identical segment by segment.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		if p.Segments[i].Type != q.Segments[i].Type {
			return false
		}
		if !slices.Equal(p.Segments[i].ASNs, q.Segments[i].ASNs) {
			return false
		}
	}
	return true
}

// String renders the path in the usual show-route form, e.g.
// "4637 1299 25091 8298 210312" with sets braced.
func (p ASPath) String() string {
	var sb strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if s.Type == ASSet {
			sb.WriteByte('{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				if s.Type == ASSet {
					sb.WriteByte(',')
				} else {
					sb.WriteByte(' ')
				}
			}
			fmt.Fprintf(&sb, "%d", uint32(a))
		}
		if s.Type == ASSet {
			sb.WriteByte('}')
		}
	}
	return sb.String()
}

// AppendWireFormat appends the four-octet-AS wire encoding of the path.
func (p ASPath) AppendWireFormat(dst []byte) ([]byte, error) {
	for _, s := range p.Segments {
		if s.Type != ASSet && s.Type != ASSequence {
			return dst, fmt.Errorf("%w: bad segment type %d", ErrBadAttribute, s.Type)
		}
		if len(s.ASNs) == 0 || len(s.ASNs) > 255 {
			return dst, fmt.Errorf("%w: segment with %d ASNs", ErrBadAttribute, len(s.ASNs))
		}
		dst = append(dst, byte(s.Type), byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			dst = binary.BigEndian.AppendUint32(dst, uint32(a))
		}
	}
	return dst, nil
}

// DecodeASPath parses a four-octet-AS AS_PATH attribute value.
func DecodeASPath(b []byte) (ASPath, error) {
	var p ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return ASPath{}, fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadAttribute)
		}
		st := SegmentType(b[0])
		if st != ASSet && st != ASSequence {
			return ASPath{}, fmt.Errorf("%w: bad AS_PATH segment type %d", ErrBadAttribute, st)
		}
		count := int(b[1])
		need := 2 + 4*count
		if len(b) < need {
			return ASPath{}, fmt.Errorf("%w: AS_PATH segment needs %d bytes, have %d", ErrBadAttribute, need, len(b))
		}
		seg := PathSegment{Type: st, ASNs: make([]ASN, count)}
		for i := 0; i < count; i++ {
			seg.ASNs[i] = ASN(binary.BigEndian.Uint32(b[2+4*i:]))
		}
		p.Segments = append(p.Segments, seg)
		b = b[need:]
	}
	return p, nil
}
