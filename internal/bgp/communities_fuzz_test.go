package bgp

import (
	"slices"
	"strings"
	"testing"
)

// FuzzCommunities is the differential fuzz target for the COMMUNITIES
// attribute: the allocating decoder and the scratch decoder must agree on
// the decoded community list for every input (the scratch path reuses its
// backing array across calls, so stale-state bugs surface here), and
// whatever decodes must survive an encode/decode round trip unchanged.
// Run with `go test -fuzz FuzzCommunities ./internal/bgp`; the committed
// corpus under testdata/fuzz/FuzzCommunities is kept in sync by
// TestFuzzSeedCorpus.
func FuzzCommunities(f *testing.F) {
	for _, seed := range communityCorpusSeeds(f) {
		f.Add(seed.data)
	}
	// One scratch for the whole run: reuse across inputs is the production
	// access pattern, and exactly where a missed reset would leak one
	// message's communities into the next.
	var scratch Scratch
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		su, serr := scratch.DecodeUpdate(data, DecodeBorrow|DecodeIntern)
		if (err == nil) != (serr == nil) {
			t.Fatalf("allocating and scratch decode disagree: %v vs %v", err, serr)
		}
		if err != nil {
			return
		}
		if !slices.Equal(u.Attrs.Communities, su.Attrs.Communities) {
			t.Fatalf("community lists diverge:\nalloc:   %v\nscratch: %v",
				u.Attrs.Communities, su.Attrs.Communities)
		}
		for _, c := range u.Attrs.Communities {
			if s := c.String(); strings.Count(s, ":") != 1 {
				t.Fatalf("community %#x renders as %q", uint32(c), s)
			}
			if NewCommunity(uint16(uint32(c)>>16), uint16(uint32(c))) != c {
				t.Fatalf("community %#x does not survive a split/repack", uint32(c))
			}
		}
		wire, err := u.AppendWireFormat(nil)
		if err != nil {
			// Not everything decodable re-encodes (see FuzzDecodeUpdate);
			// an error is fine, a panic is not.
			return
		}
		u2, err := DecodeUpdate(wire)
		if err != nil {
			t.Fatalf("re-encoded update does not decode: %v", err)
		}
		if !slices.Equal(u2.Attrs.Communities, u.Attrs.Communities) {
			t.Fatalf("communities changed across round trip: %v -> %v",
				u.Attrs.Communities, u2.Attrs.Communities)
		}
	})
}
