package bgp

import (
	"bytes"
	"net/netip"
	"testing"
)

// allocTestUpdate builds a representative UPDATE exercising every hot
// attribute: AS path, aggregator, communities, MP_REACH, MP_UNREACH, an
// unknown attribute, plus top-level NLRI and withdrawals.
func allocTestUpdate(t *testing.T) []byte {
	t.Helper()
	u := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		NLRI: []netip.Prefix{
			netip.MustParsePrefix("93.175.146.0/24"),
			netip.MustParsePrefix("93.175.147.0/24"),
		},
		Attrs: PathAttributes{
			HasOrigin:   true,
			Origin:      OriginIGP,
			ASPath:      ASPath{Segments: []PathSegment{{Type: ASSequence, ASNs: []ASN{64500, 64501, 64502}}}},
			NextHop:     netip.MustParseAddr("192.0.2.1"),
			Communities: []Community{Community(64500<<16 | 100)},
			Aggregator:  &Aggregator{ASN: 64502, Addr: netip.MustParseAddr("192.0.2.9")},
			MPReach: &MPReachNLRI{
				AFI: AFIIPv6, SAFI: SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1200::/48")},
			},
			MPUnreach: &MPUnreachNLRI{
				AFI: AFIIPv6, SAFI: SAFIUnicast,
				Withdrawn: []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1300::/48")},
			},
			Unknown: []RawAttr{{Flags: FlagOptional | FlagTransitive, Type: 32, Value: []byte{1, 2, 3, 4}}},
		},
	}
	wire, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestScratchDecodeMatchesDecodeUpdate pins the scratch decoder to the
// allocating one by round-tripping both results back to wire form.
func TestScratchDecodeMatchesDecodeUpdate(t *testing.T) {
	wire := allocTestUpdate(t)
	want, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for _, df := range []DecodeFlags{0, DecodeBorrow, DecodeIntern, DecodeBorrow | DecodeIntern} {
		got, err := s.DecodeUpdate(wire, df)
		if err != nil {
			t.Fatalf("flags %b: %v", df, err)
		}
		wantWire, err := want.AppendWireFormat(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotWire, err := got.AppendWireFormat(nil)
		if err != nil {
			t.Fatalf("flags %b: re-encode: %v", df, err)
		}
		if !bytes.Equal(gotWire, wantWire) {
			t.Errorf("flags %b: scratch decode diverges from DecodeUpdate", df)
		}
	}
}

// TestScratchDecodeUpdateAllocs is the allocation regression fence for the
// hot decode path: once the scratch is warm and the attributes are
// interned, decoding a repeated UPDATE must not allocate at all.
func TestScratchDecodeUpdateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	wire := allocTestUpdate(t)
	var s Scratch
	if _, err := s.DecodeUpdate(wire, DecodeBorrow|DecodeIntern); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := s.DecodeUpdate(wire, DecodeBorrow|DecodeIntern); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm scratch decode allocates %v allocs/op, want 0", avg)
	}
}
