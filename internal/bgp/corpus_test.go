package bgp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Regenerate the committed seed corpus with:
//
//	go test ./internal/bgp -run TestFuzzSeedCorpus -update-corpus
var updateCorpus = flag.Bool("update-corpus", false, "rewrite the seed corpus under testdata/fuzz/FuzzCommunities")

const corpusDir = "testdata/fuzz/FuzzCommunities"

// communitySeed is one committed FuzzCommunities seed plus its expected
// decode outcome, so the corpus check proves the seeds land where they
// are aimed: deep inside the COMMUNITIES handling, not bounced by framing.
type communitySeed struct {
	data    []byte
	wantErr bool // decode must fail (with ErrBadAttribute)
	comms   int  // expected community count when decode succeeds
}

// communityCorpusSeeds builds the committed FuzzCommunities seeds:
// well-formed updates carrying every community shape the codebase
// produces (plain lists, well-known values, storm-style churn with
// duplicates and boundary values) plus hand-framed edge cases the encoder
// never emits (a zero-length attribute, a truncated one).
func communityCorpusSeeds(t testing.TB) map[string]communitySeed {
	t.Helper()
	encode := func(u *Update) []byte {
		wire, err := u.AppendWireFormat(nil)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	// frame wraps raw path attributes in a minimal UPDATE (no withdrawn
	// routes, no NLRI), for attribute encodings AppendWireFormat refuses
	// to produce.
	frame := func(attrs []byte) []byte {
		body := binary.BigEndian.AppendUint16(nil, 0)
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
		body = append(body, attrs...)
		wire := appendHeader(nil, uint16(HeaderLen+len(body)), MsgUpdate)
		return append(wire, body...)
	}

	v4 := &Update{
		Attrs: PathAttributes{
			HasOrigin: true,
			ASPath:    NewASPath(12654, 25091),
			NextHop:   netip.MustParseAddr("192.0.2.1"),
			Communities: []Community{
				NewCommunity(64500, 100), NewCommunity(286, 3), NewCommunity(65535, 65535),
			},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("93.175.146.0/24")},
	}

	wellKnown := &Update{
		Attrs: PathAttributes{
			HasOrigin: true,
			ASPath:    NewASPath(4637, 1299, 210312),
			// NO_EXPORT, NO_ADVERTISE, and the all-zero value.
			Communities: []Community{0xFFFFFF01, 0xFFFFFF02, 0},
			MPReach: &MPReachNLRI{
				AFI: AFIIPv6, SAFI: SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
			},
		},
	}

	// Storm-style churn: a long list with duplicates and both boundary
	// values, the shape the community-storm generator floods with.
	churn := make([]Community, 0, 32)
	for i := 0; i < 30; i++ {
		churn = append(churn, NewCommunity(64500, uint16(i%5)))
	}
	churn = append(churn, 0, 0xFFFFFFFF)
	storm := &Update{
		Attrs: PathAttributes{
			HasOrigin:   true,
			ASPath:      NewASPath(12654, 200),
			NextHop:     netip.MustParseAddr("192.0.2.1"),
			Communities: churn,
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}

	empty := frame(appendAttrHeader(nil, FlagOptional|FlagTransitive, AttrCommunities, 0))
	odd := frame(append(appendAttrHeader(nil, FlagOptional|FlagTransitive, AttrCommunities, 3), 0xfc, 0x00, 0x01))

	return map[string]communitySeed{
		"seed-v4-communities": {data: encode(v4), comms: 3},
		"seed-v6-wellknown":   {data: encode(wellKnown), comms: 3},
		"seed-storm-churn":    {data: encode(storm), comms: 32},
		"seed-empty-attr":     {data: empty, comms: 0},
		"seed-odd-length":     {data: odd, wantErr: true},
	}
}

// corpusEntry renders data in the `go test fuzz v1` single-[]byte format
// FuzzCommunities consumes.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// parseCorpusEntry is the inverse, for validating committed files.
func parseCorpusEntry(t *testing.T, raw []byte) []byte {
	t.Helper()
	lines := strings.SplitN(string(raw), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("bad corpus header %q", lines[0])
	}
	body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(lines[1]), "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("bad corpus literal: %v", err)
	}
	return []byte(s)
}

// TestFuzzSeedCorpus keeps the committed seed corpus in sync with
// communityCorpusSeeds and proves each seed's decode outcome — both
// decoders, allocating and scratch — matches the shape it was built to
// exercise.
func TestFuzzSeedCorpus(t *testing.T) {
	seeds := communityCorpusSeeds(t)
	if *updateCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, seed := range seeds {
			if err := os.WriteFile(filepath.Join(corpusDir, name), corpusEntry(seed.data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, seed := range seeds {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatalf("%v (run with -update-corpus to regenerate)", err)
			}
			if got := parseCorpusEntry(t, raw); !bytes.Equal(got, seed.data) {
				t.Fatal("committed corpus entry diverges from communityCorpusSeeds (run with -update-corpus)")
			}
			var scratch Scratch
			u, err := DecodeUpdate(seed.data)
			su, serr := scratch.DecodeUpdate(seed.data, DecodeBorrow|DecodeIntern)
			if seed.wantErr {
				if !errors.Is(err, ErrBadAttribute) || !errors.Is(serr, ErrBadAttribute) {
					t.Fatalf("want ErrBadAttribute from both decoders, got %v / %v", err, serr)
				}
				return
			}
			if err != nil || serr != nil {
				t.Fatalf("seed does not decode: %v / %v", err, serr)
			}
			if len(u.Attrs.Communities) != seed.comms || len(su.Attrs.Communities) != seed.comms {
				t.Fatalf("want %d communities, got %d (alloc) / %d (scratch)",
					seed.comms, len(u.Attrs.Communities), len(su.Attrs.Communities))
			}
		})
	}
}
