// Package bgp implements the subset of the BGP-4 protocol (RFC 4271) wire
// format needed to generate and analyze routing data: UPDATE messages with
// their path attributes, including the multiprotocol extensions for IPv6
// (RFC 4760) and four-octet AS numbers (RFC 6793).
//
// The package follows a layered-codec idiom: every message and attribute
// type supports DecodeFromBytes to parse wire data in place and
// AppendWireFormat to serialize without intermediate allocation. All
// AS_PATH attributes are encoded with four-octet AS numbers, matching a
// session on which the four-octet AS capability has been negotiated (as is
// the case for route-collector sessions recorded as BGP4MP_MESSAGE_AS4).
package bgp

import (
	"errors"
	"fmt"
)

// ASN is a four-octet autonomous system number (RFC 6793).
type ASN uint32

// String renders the ASN in the canonical "ASxxxx" plain form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// MessageType identifies the BGP message type carried in the common header.
type MessageType uint8

// BGP message types (RFC 4271 §4.1).
const (
	MsgOpen         MessageType = 1
	MsgUpdate       MessageType = 2
	MsgNotification MessageType = 3
	MsgKeepalive    MessageType = 4
)

func (t MessageType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
	}
}

// AFI is an address family identifier.
type AFI uint16

// Address family identifiers used by the multiprotocol extensions.
const (
	AFIIPv4 AFI = 1
	AFIIPv6 AFI = 2
)

func (a AFI) String() string {
	switch a {
	case AFIIPv4:
		return "IPv4"
	case AFIIPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("AFI(%d)", uint16(a))
	}
}

// SAFI is a subsequent address family identifier.
type SAFI uint8

// Subsequent address family identifiers.
const (
	SAFIUnicast   SAFI = 1
	SAFIMulticast SAFI = 2
)

// Path attribute type codes (RFC 4271 §4.3, RFC 1997, RFC 4760).
const (
	AttrOrigin          uint8 = 1
	AttrASPath          uint8 = 2
	AttrNextHop         uint8 = 3
	AttrMED             uint8 = 4
	AttrLocalPref       uint8 = 5
	AttrAtomicAggregate uint8 = 6
	AttrAggregator      uint8 = 7
	AttrCommunities     uint8 = 8
	AttrMPReachNLRI     uint8 = 14
	AttrMPUnreachNLRI   uint8 = 15
)

// Path attribute flag bits.
const (
	FlagOptional   uint8 = 0x80
	FlagTransitive uint8 = 0x40
	FlagPartial    uint8 = 0x20
	FlagExtLen     uint8 = 0x10
)

// Origin attribute values (RFC 4271 §5.1.1).
type Origin uint8

// Origin codes.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// MarkerLen is the length of the all-ones marker that opens every BGP
// message header.
const MarkerLen = 16

// HeaderLen is the length of the BGP common header: marker, two-byte
// length, one-byte type.
const HeaderLen = MarkerLen + 3

// MaxMessageLen is the maximum BGP message size (RFC 4271 §4.1).
const MaxMessageLen = 4096

// Sentinel decode errors. Wire-format errors returned by this package wrap
// one of these, so callers can classify failures with errors.Is.
var (
	ErrShortMessage  = errors.New("bgp: truncated message")
	ErrBadMarker     = errors.New("bgp: header marker is not all ones")
	ErrBadLength     = errors.New("bgp: invalid length field")
	ErrBadAttribute  = errors.New("bgp: malformed path attribute")
	ErrBadPrefix     = errors.New("bgp: malformed NLRI prefix")
	ErrUnknownType   = errors.New("bgp: unknown message type")
	ErrBadAddrFamily = errors.New("bgp: unsupported address family")
)
