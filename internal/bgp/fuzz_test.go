package bgp

import (
	"net/netip"
	"testing"
)

// FuzzDecodeUpdate exercises the full UPDATE decode path with mutated
// wire data. Run with `go test -fuzz FuzzDecodeUpdate ./internal/bgp`;
// the seed corpus also runs as a normal test.
func FuzzDecodeUpdate(f *testing.F) {
	// Seeds: real encodings of representative messages.
	v6 := &Update{
		Attrs: PathAttributes{
			HasOrigin:  true,
			ASPath:     NewASPath(4637, 1299, 25091, 8298, 210312),
			Aggregator: &Aggregator{ASN: 210312, Addr: netip.MustParseAddr("10.19.29.192")},
			MPReach: &MPReachNLRI{
				AFI: AFIIPv6, SAFI: SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
			},
		},
	}
	if wire, err := v6.AppendWireFormat(nil); err == nil {
		f.Add(wire)
	}
	v4 := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("93.175.146.0/24")},
		Attrs: PathAttributes{
			HasOrigin: true,
			ASPath:    NewASPath(12654),
			NextHop:   netip.MustParseAddr("192.0.2.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("93.175.147.0/24")},
	}
	if wire, err := v4.AppendWireFormat(nil); err == nil {
		f.Add(wire)
	}
	f.Add(NewKeepalive())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking, and the
		// re-encoded form must decode to an update announcing and
		// withdrawing the same prefixes.
		wire, err := u.AppendWireFormat(nil)
		if err != nil {
			// Some decodable inputs are not re-encodable (e.g. an
			// oversized reconstruction); that is fine as long as it is
			// an error, not a panic.
			return
		}
		u2, err := DecodeUpdate(wire)
		if err != nil {
			t.Fatalf("re-encoded update does not decode: %v", err)
		}
		if len(u2.Announced()) != len(u.Announced()) {
			t.Fatalf("announced count changed: %d -> %d", len(u.Announced()), len(u2.Announced()))
		}
		if len(u2.WithdrawnAll()) != len(u.WithdrawnAll()) {
			t.Fatalf("withdrawn count changed: %d -> %d", len(u.WithdrawnAll()), len(u2.WithdrawnAll()))
		}
	})
}

// FuzzDecodePrefix checks the NLRI prefix decoder against arbitrary bytes
// for both families.
func FuzzDecodePrefix(f *testing.F) {
	f.Add([]byte{24, 93, 175, 146}, true)
	f.Add([]byte{48, 0x2a, 0x0d, 0x3d, 0xc1, 0x18, 0x51}, false)
	f.Add([]byte{0}, true)
	f.Fuzz(func(t *testing.T, data []byte, v4 bool) {
		afi := AFIIPv6
		if v4 {
			afi = AFIIPv4
		}
		p, n, err := DecodePrefix(data, afi)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round trip: the decoded prefix re-encodes into the same bytes
		// (canonical form: the decoder zero-extends, the encoder masks).
		enc, err := AppendPrefix(nil, p)
		if err != nil {
			t.Fatalf("decoded prefix does not encode: %v", err)
		}
		dec2, _, err := DecodePrefix(enc, afi)
		if err != nil || dec2 != p {
			t.Fatalf("canonical round trip failed: %v %v", dec2, err)
		}
	})
}
