package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"
)

// Community is an RFC 1997 community value, conventionally written
// "asn:value" with each half in the high/low 16 bits.
type Community uint32

// NewCommunity packs the conventional asn:value form.
func NewCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// String renders the community in asn:value form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// Aggregator is the AGGREGATOR path attribute (RFC 4271 §5.1.7) in its
// four-octet-AS form. RIPE RIS beacons abuse the address as a BGP clock:
// 10.x.y.z where x.y.z is the 24-bit count of seconds since the start of
// the month (see the beacon package).
type Aggregator struct {
	ASN  ASN
	Addr netip.Addr // IPv4
}

// MPReachNLRI is the MP_REACH_NLRI attribute (RFC 4760 §3) announcing
// prefixes of a non-IPv4-unicast family together with their next hop.
type MPReachNLRI struct {
	AFI     AFI
	SAFI    SAFI
	NextHop netip.Addr
	NLRI    []netip.Prefix
}

// MPUnreachNLRI is the MP_UNREACH_NLRI attribute (RFC 4760 §4) withdrawing
// prefixes of a non-IPv4-unicast family.
type MPUnreachNLRI struct {
	AFI       AFI
	SAFI      SAFI
	Withdrawn []netip.Prefix
}

// RawAttr preserves an attribute this package does not model so that
// decode→encode round-trips are lossless.
type RawAttr struct {
	Flags uint8
	Type  uint8
	Value []byte
}

// PathAttributes carries the decoded path attributes of an UPDATE. Optional
// scalar attributes use Has* flags so the zero value encodes nothing.
type PathAttributes struct {
	HasOrigin bool
	Origin    Origin

	ASPath ASPath // encoded when non-empty

	NextHop netip.Addr // encoded when valid (IPv4 next hop)

	HasMED bool
	MED    uint32

	HasLocalPref bool
	LocalPref    uint32

	AtomicAggregate bool

	Aggregator *Aggregator

	Communities []Community

	MPReach   *MPReachNLRI
	MPUnreach *MPUnreachNLRI

	Unknown []RawAttr
}

func appendAttrHeader(dst []byte, flags, typ uint8, valLen int) []byte {
	if valLen > 255 {
		flags |= FlagExtLen
		dst = append(dst, flags, typ)
		dst = binary.BigEndian.AppendUint16(dst, uint16(valLen))
		return dst
	}
	flags &^= FlagExtLen
	return append(dst, flags, typ, byte(valLen))
}

// AppendWireFormat appends the attributes in canonical type order.
func (pa *PathAttributes) AppendWireFormat(dst []byte) ([]byte, error) {
	if pa.HasOrigin {
		dst = appendAttrHeader(dst, FlagTransitive, AttrOrigin, 1)
		dst = append(dst, byte(pa.Origin))
	}
	if len(pa.ASPath.Segments) > 0 {
		val, err := pa.ASPath.AppendWireFormat(nil)
		if err != nil {
			return dst, err
		}
		dst = appendAttrHeader(dst, FlagTransitive, AttrASPath, len(val))
		dst = append(dst, val...)
	}
	if pa.NextHop.IsValid() {
		if !pa.NextHop.Is4() {
			return dst, fmt.Errorf("%w: NEXT_HOP must be IPv4 (use MP_REACH_NLRI for IPv6)", ErrBadAttribute)
		}
		a := pa.NextHop.As4()
		dst = appendAttrHeader(dst, FlagTransitive, AttrNextHop, 4)
		dst = append(dst, a[:]...)
	}
	if pa.HasMED {
		dst = appendAttrHeader(dst, FlagOptional, AttrMED, 4)
		dst = binary.BigEndian.AppendUint32(dst, pa.MED)
	}
	if pa.HasLocalPref {
		dst = appendAttrHeader(dst, FlagTransitive, AttrLocalPref, 4)
		dst = binary.BigEndian.AppendUint32(dst, pa.LocalPref)
	}
	if pa.AtomicAggregate {
		dst = appendAttrHeader(dst, FlagTransitive, AttrAtomicAggregate, 0)
	}
	if pa.Aggregator != nil {
		if !pa.Aggregator.Addr.Is4() {
			return dst, fmt.Errorf("%w: AGGREGATOR address must be IPv4", ErrBadAttribute)
		}
		a := pa.Aggregator.Addr.As4()
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAggregator, 8)
		dst = binary.BigEndian.AppendUint32(dst, uint32(pa.Aggregator.ASN))
		dst = append(dst, a[:]...)
	}
	if len(pa.Communities) > 0 {
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrCommunities, 4*len(pa.Communities))
		for _, c := range pa.Communities {
			dst = binary.BigEndian.AppendUint32(dst, uint32(c))
		}
	}
	if pa.MPReach != nil {
		val, err := pa.MPReach.appendValue(nil)
		if err != nil {
			return dst, err
		}
		dst = appendAttrHeader(dst, FlagOptional, AttrMPReachNLRI, len(val))
		dst = append(dst, val...)
	}
	if pa.MPUnreach != nil {
		val, err := pa.MPUnreach.appendValue(nil)
		if err != nil {
			return dst, err
		}
		dst = appendAttrHeader(dst, FlagOptional, AttrMPUnreachNLRI, len(val))
		dst = append(dst, val...)
	}
	for _, ra := range pa.Unknown {
		dst = appendAttrHeader(dst, ra.Flags, ra.Type, len(ra.Value))
		dst = append(dst, ra.Value...)
	}
	return dst, nil
}

func (m *MPReachNLRI) appendValue(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.AFI))
	dst = append(dst, byte(m.SAFI))
	if !m.NextHop.IsValid() {
		return dst, fmt.Errorf("%w: MP_REACH_NLRI next hop missing", ErrBadAttribute)
	}
	nh := m.NextHop.AsSlice()
	dst = append(dst, byte(len(nh)))
	dst = append(dst, nh...)
	dst = append(dst, 0) // reserved
	return AppendPrefixes(dst, m.NLRI)
}

func (m *MPUnreachNLRI) appendValue(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.AFI))
	dst = append(dst, byte(m.SAFI))
	return AppendPrefixes(dst, m.Withdrawn)
}

// DecodePathAttributes parses a full path-attributes block of exactly b.
// Every decoded value owns its memory (retain semantics); hot paths that
// can live with borrowed buffers decode through Scratch.DecodeUpdate
// instead.
func DecodePathAttributes(b []byte) (PathAttributes, error) {
	var pa PathAttributes
	err := decodePathAttributesInto(&pa, nil, 0, b)
	return pa, err
}

// decodePathAttributesInto is the shared attribute-block walk. s, when
// non-nil, provides scratch MP_REACH/UNREACH structs to decode into; df
// selects borrow/intern behavior per the DecodeFlags contract.
func decodePathAttributesInto(pa *PathAttributes, s *Scratch, df DecodeFlags, b []byte) error {
	for len(b) > 0 {
		if len(b) < 3 {
			return fmt.Errorf("%w: truncated attribute header", ErrBadAttribute)
		}
		flags, typ := b[0], b[1]
		var vlen, off int
		if flags&FlagExtLen != 0 {
			if len(b) < 4 {
				return fmt.Errorf("%w: truncated extended length", ErrBadAttribute)
			}
			vlen = int(binary.BigEndian.Uint16(b[2:]))
			off = 4
		} else {
			vlen = int(b[2])
			off = 3
		}
		if len(b) < off+vlen {
			return fmt.Errorf("%w: attribute %d value needs %d bytes, have %d", ErrBadAttribute, typ, vlen, len(b)-off)
		}
		val := b[off : off+vlen]
		if err := pa.decodeOne(df, s, flags, typ, val); err != nil {
			return err
		}
		b = b[off+vlen:]
	}
	return nil
}

func (pa *PathAttributes) decodeOne(df DecodeFlags, s *Scratch, flags, typ uint8, val []byte) error {
	switch typ {
	case AttrOrigin:
		if len(val) != 1 {
			return fmt.Errorf("%w: ORIGIN length %d", ErrBadAttribute, len(val))
		}
		pa.HasOrigin = true
		pa.Origin = Origin(val[0])
	case AttrASPath:
		var p ASPath
		var err error
		if df&DecodeIntern != 0 {
			p, err = internedASPath(val)
		} else {
			p, err = DecodeASPath(val)
		}
		if err != nil {
			return err
		}
		pa.ASPath = p
	case AttrNextHop:
		if len(val) != 4 {
			return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttribute, len(val))
		}
		pa.NextHop = netip.AddrFrom4([4]byte(val))
	case AttrMED:
		if len(val) != 4 {
			return fmt.Errorf("%w: MED length %d", ErrBadAttribute, len(val))
		}
		pa.HasMED = true
		pa.MED = binary.BigEndian.Uint32(val)
	case AttrLocalPref:
		if len(val) != 4 {
			return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttribute, len(val))
		}
		pa.HasLocalPref = true
		pa.LocalPref = binary.BigEndian.Uint32(val)
	case AttrAtomicAggregate:
		if len(val) != 0 {
			return fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadAttribute, len(val))
		}
		pa.AtomicAggregate = true
	case AttrAggregator:
		if len(val) != 8 {
			return fmt.Errorf("%w: AGGREGATOR length %d (want 8, four-octet AS)", ErrBadAttribute, len(val))
		}
		if df&DecodeIntern != 0 {
			pa.Aggregator = internedAggregator(val)
		} else {
			pa.Aggregator = &Aggregator{
				ASN:  ASN(binary.BigEndian.Uint32(val)),
				Addr: netip.AddrFrom4([4]byte(val[4:8])),
			}
		}
	case AttrCommunities:
		if len(val)%4 != 0 {
			return fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttribute, len(val))
		}
		if pa.Communities == nil {
			pa.Communities = make([]Community, 0, len(val)/4)
		} else {
			pa.Communities = pa.Communities[:0]
		}
		for i := 0; i+4 <= len(val); i += 4 {
			pa.Communities = append(pa.Communities, Community(binary.BigEndian.Uint32(val[i:])))
		}
	case AttrMPReachNLRI:
		var m *MPReachNLRI
		if s != nil {
			m = &s.mpReach
			*m = MPReachNLRI{NLRI: m.NLRI[:0]}
		} else {
			m = &MPReachNLRI{}
		}
		if err := decodeMPReachInto(m, val); err != nil {
			return err
		}
		pa.MPReach = m
	case AttrMPUnreachNLRI:
		var m *MPUnreachNLRI
		if s != nil {
			m = &s.mpUnreach
			*m = MPUnreachNLRI{Withdrawn: m.Withdrawn[:0]}
		} else {
			m = &MPUnreachNLRI{}
		}
		if err := decodeMPUnreachInto(m, val); err != nil {
			return err
		}
		pa.MPUnreach = m
	default:
		// Clone only in the retain path: a borrowed decode hands the
		// caller a value aliasing the input buffer, per DecodeBorrow.
		if df&DecodeBorrow == 0 {
			val = slices.Clone(val)
		}
		pa.Unknown = append(pa.Unknown, RawAttr{Flags: flags, Type: typ, Value: val})
	}
	return nil
}

func decodeMPReachInto(m *MPReachNLRI, val []byte) error {
	if len(val) < 5 {
		return fmt.Errorf("%w: MP_REACH_NLRI too short", ErrBadAttribute)
	}
	m.AFI = AFI(binary.BigEndian.Uint16(val))
	m.SAFI = SAFI(val[2])
	nhLen := int(val[3])
	if len(val) < 4+nhLen+1 {
		return fmt.Errorf("%w: MP_REACH_NLRI next hop truncated", ErrBadAttribute)
	}
	nhBytes := val[4 : 4+nhLen]
	switch nhLen {
	case 4:
		m.NextHop = netip.AddrFrom4([4]byte(nhBytes))
	case 16, 32:
		// A 32-byte next hop carries global + link-local; keep the global.
		m.NextHop = netip.AddrFrom16([16]byte(nhBytes[:16]))
	default:
		return fmt.Errorf("%w: MP_REACH_NLRI next hop length %d", ErrBadAttribute, nhLen)
	}
	rest := val[4+nhLen+1:] // skip reserved byte
	nlri, err := appendDecodedPrefixes(m.NLRI, rest, m.AFI)
	if err != nil {
		return err
	}
	m.NLRI = nlri
	return nil
}

func decodeMPUnreachInto(m *MPUnreachNLRI, val []byte) error {
	if len(val) < 3 {
		return fmt.Errorf("%w: MP_UNREACH_NLRI too short", ErrBadAttribute)
	}
	m.AFI = AFI(binary.BigEndian.Uint16(val))
	m.SAFI = SAFI(val[2])
	wd, err := appendDecodedPrefixes(m.Withdrawn, val[3:], m.AFI)
	if err != nil {
		return err
	}
	m.Withdrawn = wd
	return nil
}
