package bgp

import (
	"fmt"
	"net/netip"
)

// AppendPrefix appends the RFC 4271 NLRI wire encoding of p: one length
// byte (in bits) followed by the minimum number of address bytes needed to
// hold that many bits. Bits beyond the prefix length are zeroed, as
// required for canonical encodings.
func AppendPrefix(dst []byte, p netip.Prefix) ([]byte, error) {
	if !p.IsValid() {
		return dst, fmt.Errorf("%w: invalid prefix", ErrBadPrefix)
	}
	p = p.Masked()
	bits := p.Bits()
	dst = append(dst, byte(bits))
	addr := p.Addr().AsSlice()
	n := (bits + 7) / 8
	return append(dst, addr[:n]...), nil
}

// DecodePrefix parses one NLRI-encoded prefix for the given address family
// from the start of b. It returns the prefix and the number of bytes
// consumed.
func DecodePrefix(b []byte, afi AFI) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, fmt.Errorf("%w: empty NLRI", ErrBadPrefix)
	}
	bits := int(b[0])
	var max int
	switch afi {
	case AFIIPv4:
		max = 32
	case AFIIPv6:
		max = 128
	default:
		return netip.Prefix{}, 0, fmt.Errorf("%w: afi %d", ErrBadAddrFamily, afi)
	}
	if bits > max {
		return netip.Prefix{}, 0, fmt.Errorf("%w: prefix length %d exceeds %d", ErrBadPrefix, bits, max)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, fmt.Errorf("%w: need %d prefix bytes, have %d", ErrBadPrefix, n, len(b)-1)
	}
	var addr netip.Addr
	if afi == AFIIPv4 {
		var a4 [4]byte
		copy(a4[:], b[1:1+n])
		addr = netip.AddrFrom4(a4)
	} else {
		var a16 [16]byte
		copy(a16[:], b[1:1+n])
		addr = netip.AddrFrom16(a16)
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, 0, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	return p, 1 + n, nil
}

// AppendPrefixes appends the NLRI encodings of all prefixes in ps.
func AppendPrefixes(dst []byte, ps []netip.Prefix) ([]byte, error) {
	var err error
	for _, p := range ps {
		dst, err = AppendPrefix(dst, p)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodePrefixes parses a run of NLRI-encoded prefixes filling exactly b.
func DecodePrefixes(b []byte, afi AFI) ([]netip.Prefix, error) {
	out, err := appendDecodedPrefixes(nil, b, afi)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// appendDecodedPrefixes is DecodePrefixes appending into dst, so scratch
// decoding can reuse slice capacity across messages.
func appendDecodedPrefixes(dst []netip.Prefix, b []byte, afi AFI) ([]netip.Prefix, error) {
	for len(b) > 0 {
		p, n, err := DecodePrefix(b, afi)
		if err != nil {
			return dst, err
		}
		dst = append(dst, p)
		b = b[n:]
	}
	return dst, nil
}

// PrefixAFI reports the address family of a prefix.
func PrefixAFI(p netip.Prefix) AFI {
	if p.Addr().Is4() {
		return AFIIPv4
	}
	return AFIIPv6
}
