package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"zombiescope/internal/intern"
)

// DecodeFlags tune the allocation behavior of scratch-based decoding.
// The zero value reproduces the package's default retain semantics: every
// decoded value owns its memory and may outlive the input buffer.
type DecodeFlags uint8

const (
	// DecodeBorrow lets decoded byte fields (today: unknown attribute
	// values) alias the input buffer instead of being cloned. Only valid
	// when the caller consumes the Update before the buffer is reused —
	// the contract of the pooled MRT reader's borrow mode.
	DecodeBorrow DecodeFlags = 1 << iota
	// DecodeIntern canonicalizes AS paths and aggregators through the
	// process-wide intern tables, so repeated attributes share one
	// allocation. Interned values are safe to retain indefinitely.
	DecodeIntern
)

// Scratch is a reusable UPDATE decode workspace for hot paths that
// process one message at a time. DecodeUpdate returns a pointer into the
// Scratch itself: the Update, its prefix slices, and its MP_REACH/UNREACH
// attributes are all overwritten by the next call, so the caller must
// extract what it needs before decoding again. Values obtained with
// DecodeIntern (AS paths, aggregators) are the only parts safe to retain.
//
// A Scratch must not be shared between goroutines. The zero value is
// ready to use.
type Scratch struct {
	u         Update
	mpReach   MPReachNLRI
	mpUnreach MPUnreachNLRI
}

// DecodeUpdate parses a full UPDATE message (header included) into the
// scratch workspace. See the Scratch doc for the ownership rules; the
// decoded values are identical to the allocating DecodeUpdate's.
func (s *Scratch) DecodeUpdate(b []byte, df DecodeFlags) (*Update, error) {
	length, typ, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if typ != MsgUpdate {
		return nil, fmt.Errorf("%w: got %s, want UPDATE", ErrUnknownType, typ)
	}
	if len(b) < length {
		return nil, fmt.Errorf("%w: message declares %d bytes, have %d", ErrShortMessage, length, len(b))
	}
	u := &s.u
	*u = Update{
		Withdrawn: u.Withdrawn[:0],
		NLRI:      u.NLRI[:0],
		Attrs: PathAttributes{
			Communities: u.Attrs.Communities[:0],
			Unknown:     u.Attrs.Unknown[:0],
		},
	}
	if err := decodeUpdateBodyInto(u, s, df, b[HeaderLen:length]); err != nil {
		return nil, err
	}
	return u, nil
}

// Process-wide intern tables for the attributes the detection hot path
// retains: AS paths (keyed by their wire encoding) and aggregators (keyed
// by their fixed 8-byte value). Entries live for the process lifetime,
// bounded by the number of distinct attribute values, which a month of
// beacon archives keeps small relative to the record count.
var (
	pathTable = intern.NewTable[ASPath]()
	aggTable  = intern.NewTable[*Aggregator]()
)

func internedASPath(wire []byte) (ASPath, error) {
	return pathTable.GetErr(wire, decodeASPathKey)
}

func decodeASPathKey(key []byte) (ASPath, error) { return DecodeASPath(key) }

func internedAggregator(val []byte) *Aggregator {
	return aggTable.Get(val, decodeAggregatorKey)
}

func decodeAggregatorKey(key []byte) *Aggregator {
	return &Aggregator{
		ASN:  ASN(binary.BigEndian.Uint32(key)),
		Addr: netip.AddrFrom4([4]byte(key[4:8])),
	}
}

// InternStats reports the process-wide attribute intern tables' counters,
// for the pipeline's observability surfaces.
func InternStats() (path, agg intern.Stats) {
	return pathTable.Stats(), aggTable.Stats()
}
