//go:build !race

package bgp

const raceEnabled = false
