package beacon

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// IPv4 beacon encoding — the paper's §6 future-work item: "IPv4 prefix
// offers only a limited number of bits for timestamp encoding and has only
// a few more specific prefixes (up to /24) that can be used as beacons.
// Thus, a compact encoding schema of the announcement time is necessary to
// maximize space utilization."
//
// The schema implemented here packs a slot ordinal into the /24 index
// inside a covering block: with 15-minute slots there are 96 slots per
// day, so a /17 (128 /24s) covers a full day of unique prefixes with the
// same "fresh prefix" property as the authors' IPv6 beacons, and a /13
// (2048 /24s) covers a 15-day recycle (1440 slots). The slot ordinal is
// the number of slots since midnight (24-hour recycle) or since the start
// of a 15-day cycle anchored at the Unix epoch (15-day recycle).

// EncodeAuthorPrefix4 returns the /24 beacon for the slot time t inside
// base. base must be wide enough for the approach's slot count: at most
// /17 for Recycle24h (96 slots) and at most /13 for Recycle15d (1440
// slots).
func EncodeAuthorPrefix4(base netip.Prefix, t time.Time, ap Approach) (netip.Prefix, error) {
	t = t.UTC()
	if t.Minute()%15 != 0 || t.Second() != 0 {
		return netip.Prefix{}, fmt.Errorf("beacon: %v is not a 15-minute slot", t)
	}
	if !base.Addr().Is4() {
		return netip.Prefix{}, fmt.Errorf("beacon: base %v must be IPv4", base)
	}
	slot, need, err := slotOrdinal(t, ap)
	if err != nil {
		return netip.Prefix{}, err
	}
	if base.Bits() > 24 {
		return netip.Prefix{}, fmt.Errorf("beacon: base %v is narrower than a /24", base)
	}
	if capacity := 1 << (24 - base.Bits()); capacity < need {
		return netip.Prefix{}, fmt.Errorf("beacon: base %v holds %d /24s, need %d for %s recycle",
			base, capacity, need, ap)
	}
	a4 := base.Masked().Addr().As4()
	v := binary.BigEndian.Uint32(a4[:])
	v |= uint32(slot) << 8 // the /24 index
	binary.BigEndian.PutUint32(a4[:], v)
	return netip.PrefixFrom(netip.AddrFrom4(a4), 24), nil
}

// DecodeAuthorPrefix4 recovers the slot ordinal encoded in a /24 beacon
// inside base, and the slot's offset within its recycle period.
func DecodeAuthorPrefix4(p netip.Prefix, base netip.Prefix, ap Approach) (slot int, offset time.Duration, ok bool) {
	if p.Bits() != 24 || !p.Addr().Is4() || !base.Addr().Is4() {
		return 0, 0, false
	}
	if !base.Overlaps(p) || base.Bits() > 24 {
		return 0, 0, false
	}
	pv := binary.BigEndian.Uint32(addr4(p))
	bv := binary.BigEndian.Uint32(addr4(base.Masked()))
	slot = int((pv - bv) >> 8)
	_, need, err := slotOrdinal(time.Unix(0, 0).UTC(), ap)
	if err != nil || slot >= need {
		return 0, 0, false
	}
	return slot, time.Duration(slot) * SlotDuration, true
}

func addr4(p netip.Prefix) []byte {
	a := p.Addr().As4()
	return a[:]
}

// slotOrdinal returns the slot index of t within its recycle period and
// the period's slot count.
func slotOrdinal(t time.Time, ap Approach) (slot, count int, err error) {
	switch ap {
	case Recycle24h:
		return t.Hour()*4 + t.Minute()/15, 96, nil
	case Recycle15d:
		// Anchor 15-day cycles at the Unix epoch (a fixed, shareable
		// convention: day 0 = 1970-01-01).
		days := int(t.Unix() / 86400)
		secOfDay := int(t.Unix() % 86400)
		return (days%15)*96 + secOfDay/(15*60), 1440, nil
	default:
		return 0, 0, fmt.Errorf("beacon: unknown approach %d", ap)
	}
}
