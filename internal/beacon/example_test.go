package beacon_test

import (
	"fmt"
	"net/netip"
	"time"

	"zombiescope/internal/beacon"
)

// The Aggregator BGP clock: RIPE RIS beacons encode the announcement time
// in the Aggregator IP Address as seconds since the start of the month —
// the attribute the revised methodology uses to eliminate double-counting.
func ExampleAggregatorClock() {
	at := time.Date(2018, 7, 15, 12, 0, 0, 0, time.UTC)
	addr := beacon.AggregatorClock(at)
	fmt.Println(addr)

	decoded, ok := beacon.DecodeAggregatorClock(addr, time.Date(2018, 7, 19, 2, 0, 2, 0, time.UTC))
	fmt.Println(decoded.Format(time.DateTime), ok)
	// Output:
	// 10.19.29.192
	// 2018-07-15 12:00:00 true
}

// The authors' 24-hour recycle format encodes HHMM in the prefix bits.
func ExampleEncodeAuthorPrefix() {
	base := netip.MustParsePrefix("2a0d:3dc1::/32")
	at := time.Date(2024, 6, 5, 18, 45, 0, 0, time.UTC)
	p, err := beacon.EncodeAuthorPrefix(base, at, beacon.Recycle24h)
	if err != nil {
		panic(err)
	}
	fmt.Println(p)

	h, m, _, ok := beacon.DecodeAuthorPrefix(p, beacon.Recycle24h)
	fmt.Printf("%02d:%02d %v\n", h, m, ok)
	// Output:
	// 2a0d:3dc1:1845::/48
	// 18:45 true
}

// The 15-day recycle format concatenates the hour with minute+day%15
// without padding — reproducing the paper's documented collision bug: on
// 2024-06-15 the 00:30 and 03:00 prefixes coincide.
func ExampleEncodeAuthorPrefix_collisionBug() {
	base := netip.MustParsePrefix("2a0d:3dc1::/32")
	day := time.Date(2024, 6, 15, 0, 0, 0, 0, time.UTC)
	p1, _ := beacon.EncodeAuthorPrefix(base, day.Add(30*time.Minute), beacon.Recycle15d)
	p2, _ := beacon.EncodeAuthorPrefix(base, day.Add(3*time.Hour), beacon.Recycle15d)
	fmt.Println(p1)
	fmt.Println(p2)
	fmt.Println("collide:", p1 == p2)
	// Output:
	// 2a0d:3dc1:30::/48
	// 2a0d:3dc1:30::/48
	// collide: true
}

// An AuthorSchedule produces the beacon events the origin AS executes and
// the detection intervals the zombie detector evaluates.
func ExampleAuthorSchedule() {
	s := &beacon.AuthorSchedule{
		Base:     netip.MustParsePrefix("2a0d:3dc1::/32"),
		OriginAS: 210312,
		Approach: beacon.Recycle24h,
	}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	evs := s.Events(start, start.Add(35*time.Minute))
	for _, ev := range evs {
		kind := "withdraw"
		if ev.Announce {
			kind = "announce"
		}
		fmt.Printf("%s %s %s\n", ev.At.Format("15:04"), kind, ev.Prefix)
	}
	// Output:
	// 00:00 announce 2a0d:3dc1::/48
	// 00:15 withdraw 2a0d:3dc1::/48
	// 00:15 announce 2a0d:3dc1:15::/48
	// 00:30 withdraw 2a0d:3dc1:15::/48
	// 00:30 announce 2a0d:3dc1:30::/48
}
