package beacon

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"zombiescope/internal/bgp"
)

// Event is one scheduled beacon action.
type Event struct {
	At       time.Time
	Announce bool // false = withdraw
	Prefix   netip.Prefix
	// Aggregator carries the beacon BGP clock on announcements (nil on
	// withdrawals and for schedules that do not use it).
	Aggregator *bgp.Aggregator
}

// Interval is one beacon cycle of a prefix: the detector processes each
// interval independently.
type Interval struct {
	Prefix     netip.Prefix
	AnnounceAt time.Time
	WithdrawAt time.Time
	// End is when the next announcement of the same prefix can occur (the
	// recycle horizon); state after End is attributed to later intervals.
	End time.Time
}

// Schedule produces beacon events and the matching detection intervals.
type Schedule interface {
	// Events returns all beacon events in [start, end), time-ordered.
	Events(start, end time.Time) []Event
	// Intervals returns the detection intervals for announcements in
	// [start, end), time-ordered.
	Intervals(start, end time.Time) []Interval
	// Prefixes returns every prefix the schedule can emit in [start, end).
	Prefixes(start, end time.Time) []netip.Prefix
}

// RISSchedule models the RIPE RIS beacons: each prefix is announced every
// AnnouncePeriod (4h, at 00:00, 04:00, ...) and withdrawn WithdrawAfter
// (2h) later. Announcements carry the Aggregator BGP clock.
type RISSchedule struct {
	Prefixes6 []netip.Prefix
	Prefixes4 []netip.Prefix
	OriginAS  bgp.ASN

	AnnouncePeriod time.Duration // 0 = 4h
	WithdrawAfter  time.Duration // 0 = 2h
}

func (s *RISSchedule) announcePeriod() time.Duration {
	if s.AnnouncePeriod <= 0 {
		return 4 * time.Hour
	}
	return s.AnnouncePeriod
}

func (s *RISSchedule) withdrawAfter() time.Duration {
	if s.WithdrawAfter <= 0 {
		return 2 * time.Hour
	}
	return s.WithdrawAfter
}

func (s *RISSchedule) all() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.Prefixes4)+len(s.Prefixes6))
	out = append(out, s.Prefixes4...)
	out = append(out, s.Prefixes6...)
	return out
}

// Events implements Schedule.
func (s *RISSchedule) Events(start, end time.Time) []Event {
	period := s.announcePeriod()
	var out []Event
	for t := start.UTC().Truncate(period); t.Before(end); t = t.Add(period) {
		if t.Before(start) {
			continue
		}
		for _, p := range s.all() {
			agg := &bgp.Aggregator{ASN: s.OriginAS, Addr: AggregatorClock(t)}
			out = append(out, Event{At: t, Announce: true, Prefix: p, Aggregator: agg})
			wd := t.Add(s.withdrawAfter())
			if wd.Before(end) {
				out = append(out, Event{At: wd, Announce: false, Prefix: p})
			}
		}
	}
	sortEvents(out)
	return out
}

// Intervals implements Schedule.
func (s *RISSchedule) Intervals(start, end time.Time) []Interval {
	period := s.announcePeriod()
	var out []Interval
	for t := start.UTC().Truncate(period); t.Before(end); t = t.Add(period) {
		if t.Before(start) {
			continue
		}
		for _, p := range s.all() {
			out = append(out, Interval{
				Prefix:     p,
				AnnounceAt: t,
				WithdrawAt: t.Add(s.withdrawAfter()),
				End:        t.Add(period),
			})
		}
	}
	sortIntervals(out)
	return out
}

// Prefixes implements Schedule.
func (s *RISSchedule) Prefixes(start, end time.Time) []netip.Prefix {
	return s.all()
}

// AuthorSchedule models the authors' beacons: every SlotDuration a
// different /48 inside Base is announced and withdrawn 15 minutes later.
// The prefix encodes the slot per the Approach. SlotStride > 1 thins the
// schedule (announce every SlotStride-th slot) to scale experiments down;
// 0 or 1 is the paper's full cadence of 96 prefixes per day.
type AuthorSchedule struct {
	Base       netip.Prefix // the authors' 2a0d:3dc1::/32
	OriginAS   bgp.ASN
	Approach   Approach
	SlotStride int
}

func (s *AuthorSchedule) stride() int {
	if s.SlotStride <= 1 {
		return 1
	}
	return s.SlotStride
}

// RecycleTime returns the approach's prefix reuse horizon.
func (s *AuthorSchedule) RecycleTime() time.Duration {
	if s.Approach == Recycle24h {
		return 24 * time.Hour
	}
	return 15 * 24 * time.Hour
}

func (s *AuthorSchedule) slots(start, end time.Time) []time.Time {
	var out []time.Time
	step := SlotDuration * time.Duration(s.stride())
	for t := start.UTC().Truncate(SlotDuration); t.Before(end); t = t.Add(step) {
		if t.Before(start) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Events implements Schedule. Where the 15-day encoding collides (the
// documented bug), both the earlier and later slot events are emitted —
// exactly what the real beacons did; the paper handles it at analysis
// time by studying only the later prefix.
func (s *AuthorSchedule) Events(start, end time.Time) []Event {
	var out []Event
	for _, t := range s.slots(start, end) {
		p, err := EncodeAuthorPrefix(s.Base, t, s.Approach)
		if err != nil {
			continue
		}
		agg := &bgp.Aggregator{ASN: s.OriginAS, Addr: AggregatorClock(t)}
		out = append(out, Event{At: t, Announce: true, Prefix: p, Aggregator: agg})
		wd := t.Add(SlotDuration)
		if wd.Before(end) {
			out = append(out, Event{At: wd, Announce: false, Prefix: p})
		}
	}
	sortEvents(out)
	return out
}

// Intervals implements Schedule. For collided 15-day prefixes only the
// later slot's interval is produced, per the paper's rule; the earlier
// interval would be contaminated by the re-announcement.
func (s *AuthorSchedule) Intervals(start, end time.Time) []Interval {
	slots := s.slots(start, end)
	lastSlot := make(map[netip.Prefix]time.Time)
	slotPrefix := make(map[time.Time]netip.Prefix, len(slots))
	for _, t := range slots {
		p, err := EncodeAuthorPrefix(s.Base, t, s.Approach)
		if err != nil {
			continue
		}
		slotPrefix[t] = p
		if prev, ok := lastSlot[p]; !ok || t.After(prev) {
			lastSlot[p] = t
		}
	}
	var out []Interval
	for _, t := range slots {
		p, ok := slotPrefix[t]
		if !ok {
			continue
		}
		// Skip earlier occurrences of a collided prefix within the same
		// recycle horizon.
		if next, ok := nextUse(slots, slotPrefix, p, t); ok && next.Sub(t) < s.RecycleTime() && t != lastSlot[p] {
			continue
		}
		intEnd := t.Add(s.RecycleTime())
		if next, ok := nextUse(slots, slotPrefix, p, t); ok && next.Before(intEnd) {
			intEnd = next
		}
		out = append(out, Interval{
			Prefix:     p,
			AnnounceAt: t,
			WithdrawAt: t.Add(SlotDuration),
			End:        intEnd,
		})
	}
	sortIntervals(out)
	return out
}

func nextUse(slots []time.Time, slotPrefix map[time.Time]netip.Prefix, p netip.Prefix, after time.Time) (time.Time, bool) {
	for _, t := range slots {
		if t.After(after) && slotPrefix[t] == p {
			return t, true
		}
	}
	return time.Time{}, false
}

// Prefixes implements Schedule.
func (s *AuthorSchedule) Prefixes(start, end time.Time) []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	var out []netip.Prefix
	for _, t := range s.slots(start, end) {
		p, err := EncodeAuthorPrefix(s.Base, t, s.Approach)
		if err != nil {
			continue
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
}

func sortIntervals(ivs []Interval) {
	sort.SliceStable(ivs, func(i, j int) bool { return ivs[i].AnnounceAt.Before(ivs[j].AnnounceAt) })
}

// DefaultRISPrefixes returns stand-ins for the RIPE RIS beacon prefixes of
// the replication era: 13 IPv4 and 14 IPv6 beacons (the counts the paper
// gives for the 2017–2018 periods), drawn from documentation space.
func DefaultRISPrefixes(originAS bgp.ASN) (v4, v6 []netip.Prefix) {
	for i := 0; i < 13; i++ {
		v4 = append(v4, netip.MustParsePrefix(fmt.Sprintf("93.175.%d.0/24", 144+i)))
	}
	for i := 0; i < 14; i++ {
		v6 = append(v6, netip.MustParsePrefix(fmt.Sprintf("2001:7fb:%x::/48", 0xfe00+i)))
	}
	return v4, v6
}
