// Package beacon implements the two BGP beaconing methodologies the paper
// studies:
//
//   - The RIPE RIS beacons: fixed prefixes announced every 4 hours and
//     withdrawn 2 hours later, carrying a BGP clock in the Aggregator IP
//     Address attribute ("10.x.y.z" = 24-bit seconds since the start of
//     the month).
//
//   - The authors' beacons from AS210312: a different IPv6 /48 announced
//     every 15 minutes and withdrawn 15 minutes later, with the
//     announcement time encoded in the prefix bits. Two recycle formats
//     exist: "2a0d:3dc1:(HHMM)::/48" for the 24-hour recycle approach and
//     "2a0d:3dc1:(HH)(minute+day%15)::/48" for the 15-day recycle
//     approach. The 15-day format reproduces the paper's documented
//     collision bug (on some days 2 of the 96 daily prefixes coincide,
//     e.g. 00:30 and 03:00 on 2024-06-15 both map to 2a0d:3dc1:30::/48).
package beacon

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
	"time"
)

// Approach selects the authors' prefix recycle format.
type Approach int

// Recycle approaches from §4 of the paper.
const (
	Recycle24h Approach = iota // 2024-06-04 – 2024-06-10 in the paper
	Recycle15d                 // 2024-06-10 – 2024-06-22 in the paper
)

func (a Approach) String() string {
	if a == Recycle24h {
		return "24h"
	}
	return "15d"
}

// SlotDuration is the spacing of the authors' beacon announcements
// (announce at :00/:15/:30/:45, withdraw 15 minutes later).
const SlotDuration = 15 * time.Minute

// AggregatorClock encodes t as the RIPE RIS beacon Aggregator IP Address
// "10.x.y.z", where x.y.z is the 24-bit count of seconds between midnight
// UTC on the first day of t's month and t.
func AggregatorClock(t time.Time) netip.Addr {
	t = t.UTC()
	monthStart := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
	secs := uint32(t.Sub(monthStart) / time.Second)
	var b [4]byte
	b[0] = 10
	b[1] = byte(secs >> 16)
	b[2] = byte(secs >> 8)
	b[3] = byte(secs)
	return netip.AddrFrom4(b)
}

// clockSkewSlack is how far into ref's future a decoded clock may point
// before DecodeAggregatorClock concludes the encoding straddled a month
// boundary. Announcements precede observations, so a genuinely-future
// decode only ever comes from clock skew (seconds) or mis-anchoring
// (weeks); an hour cleanly separates the two.
const clockSkewSlack = time.Hour

// DecodeAggregatorClock recovers the announcement time encoded in a beacon
// Aggregator address, interpreted relative to the month containing ref
// (the attribute is ambiguous across months, so the decoder assumes the
// most recent origin not after ref). A route announced late in one month
// but observed just after the next month began would decode weeks into
// ref's future; since announcements cannot postdate their observation by
// more than clock skew, any decode further than clockSkewSlack past ref is
// re-anchored to the previous month. It returns false if the address is
// not a beacon clock (not in 10.0.0.0/8).
func DecodeAggregatorClock(a netip.Addr, ref time.Time) (time.Time, bool) {
	if !a.Is4() {
		return time.Time{}, false
	}
	b := a.As4()
	if b[0] != 10 {
		return time.Time{}, false
	}
	secs := uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	ref = ref.UTC()
	monthStart := time.Date(ref.Year(), ref.Month(), 1, 0, 0, 0, 0, time.UTC)
	at := monthStart.Add(time.Duration(secs) * time.Second)
	if at.After(ref.Add(clockSkewSlack)) {
		at = monthStart.AddDate(0, -1, 0).Add(time.Duration(secs) * time.Second)
	}
	return at, true
}

// hexFold interprets the decimal digits of v as hexadecimal nibbles:
// hexFold(1845) == 0x1845. This is how the authors' beacons map a
// timestamp to a prefix group.
func hexFold(v int) uint16 {
	var out uint16
	for _, d := range strconv.Itoa(v) {
		out = out<<4 | uint16(d-'0')
	}
	return out
}

// EncodeAuthorPrefix returns the beacon /48 for an announcement at slot
// time t under the given approach, inside base (the authors'
// 2a0d:3dc1::/32). t must be slot-aligned (minute in {0,15,30,45}).
func EncodeAuthorPrefix(base netip.Prefix, t time.Time, ap Approach) (netip.Prefix, error) {
	t = t.UTC()
	if t.Minute()%15 != 0 || t.Second() != 0 {
		return netip.Prefix{}, fmt.Errorf("beacon: %v is not a 15-minute slot", t)
	}
	if base.Bits() > 32 || !base.Addr().Is6() {
		return netip.Prefix{}, fmt.Errorf("beacon: base %v must be an IPv6 prefix of at most /32", base)
	}
	var group uint16
	switch ap {
	case Recycle24h:
		// "(HHMM)" — zero-padded to four decimal digits, folded as hex.
		group = hexFold(t.Hour())<<8 | hexFold(t.Minute())
	case Recycle15d:
		// "(HH)(minute+day%15)" — plain decimal concatenation with no
		// padding, folded as hex. The missing padding is the paper's
		// documented collision bug (e.g. hour 0 + value 30 and hour 3 +
		// value 0 both yield "030"/"30" → the same group).
		v := t.Minute() + t.Day()%15
		s := strconv.Itoa(t.Hour()) + strconv.Itoa(v)
		n, err := strconv.ParseUint(s, 16, 16)
		if err != nil {
			return netip.Prefix{}, fmt.Errorf("beacon: group %q overflows: %v", s, err)
		}
		group = uint16(n)
	default:
		return netip.Prefix{}, fmt.Errorf("beacon: unknown approach %d", ap)
	}
	addr := base.Addr().As16()
	binary.BigEndian.PutUint16(addr[4:6], group)
	p, err := netip.AddrFrom16(addr).Prefix(48)
	if err != nil {
		return netip.Prefix{}, err
	}
	return p, nil
}

// DecodeAuthorPrefix recovers the slot encoded in an author beacon /48.
// For Recycle24h it returns the hour and minute. For Recycle15d it returns
// the hour, minute and day%15; the unpadded encoding makes some groups
// ambiguous (the collision bug) — the decoder returns the interpretation
// with the largest hour, matching the paper's rule of studying only the
// later prefix.
func DecodeAuthorPrefix(p netip.Prefix, ap Approach) (hour, minute, dayMod15 int, ok bool) {
	if p.Bits() != 48 || !p.Addr().Is6() {
		return 0, 0, 0, false
	}
	a := p.Addr().As16()
	group := binary.BigEndian.Uint16(a[4:6])
	switch ap {
	case Recycle24h:
		s := fmt.Sprintf("%04x", group)
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, 0, 0, false
		}
		hour, minute = v/100, v%100
		if hour > 23 || minute%15 != 0 || minute > 45 {
			return 0, 0, 0, false
		}
		return hour, minute, 0, true
	case Recycle15d:
		s := fmt.Sprintf("%x", group)
		// Try every split of the decimal string into HH and
		// (minute+day%15); prefer the largest hour (latest prefix). A cut
		// of 0 covers hours whose leading zero the unpadded encoding ate
		// (group "30" may be hour 0 + value 30 as well as hour 3 + 0).
		best := -1
		for cut := 0; cut < len(s) && cut <= 2; cut++ {
			h := 0
			var err1 error
			if cut > 0 {
				h, err1 = strconv.Atoi(s[:cut])
			}
			v, err2 := strconv.Atoi(s[cut:])
			if err1 != nil || err2 != nil || h > 23 {
				continue
			}
			// minute+day%15 with minute in {0,15,30,45} and day%15 in
			// [0,14] decodes uniquely: take the largest slot minute that
			// does not exceed v.
			m := (v / 15) * 15
			if m > 45 || v-m > 14 || v < 0 {
				continue
			}
			if h > best {
				best = h
				hour, minute, dayMod15 = h, m, v-m
			}
		}
		if best < 0 {
			return 0, 0, 0, false
		}
		return hour, minute, dayMod15, true
	}
	return 0, 0, 0, false
}
