package beacon

import (
	"net/netip"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

var base = netip.MustParsePrefix("2a0d:3dc1::/32")

func TestAggregatorClockPaperExample(t *testing.T) {
	// The paper's worked example: Aggregator 10.19.29.192 = 1,252,800
	// seconds after 2018-07-01, i.e. 2018-07-15 12:00 UTC.
	want := netip.MustParseAddr("10.19.29.192")
	at := time.Date(2018, 7, 15, 12, 0, 0, 0, time.UTC)
	if got := AggregatorClock(at); got != want {
		t.Errorf("AggregatorClock(%v) = %v, want %v", at, got, want)
	}
	ref := time.Date(2018, 7, 19, 2, 0, 2, 0, time.UTC)
	dec, ok := DecodeAggregatorClock(want, ref)
	if !ok {
		t.Fatal("decode failed")
	}
	if !dec.Equal(at) {
		t.Errorf("decoded %v, want %v", dec, at)
	}
}

func TestAggregatorClockRoundTrip(t *testing.T) {
	times := []time.Time{
		time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 6, 10, 11, 30, 0, 0, time.UTC),
		time.Date(2024, 6, 30, 23, 59, 59, 0, time.UTC),
	}
	for _, at := range times {
		a := AggregatorClock(at)
		dec, ok := DecodeAggregatorClock(a, at)
		if !ok || !dec.Equal(at) {
			t.Errorf("round trip of %v: got %v, ok=%v", at, dec, ok)
		}
	}
}

func TestDecodeAggregatorClockRejectsNonClock(t *testing.T) {
	if _, ok := DecodeAggregatorClock(netip.MustParseAddr("192.0.2.1"), time.Now()); ok {
		t.Error("non-10/8 address decoded")
	}
	if _, ok := DecodeAggregatorClock(netip.MustParseAddr("2001:db8::1"), time.Now()); ok {
		t.Error("IPv6 address decoded")
	}
}

func TestDecodeAggregatorClockTable(t *testing.T) {
	ref := time.Date(2024, 6, 19, 2, 0, 2, 0, time.UTC)
	cases := []struct {
		name string
		addr string
		ref  time.Time
		want time.Time
		ok   bool
	}{
		{
			name: "zero value is the month start",
			addr: "10.0.0.0",
			ref:  ref,
			want: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC),
			ok:   true,
		},
		{
			name: "one second into the month",
			addr: "10.0.0.1",
			ref:  ref,
			want: time.Date(2024, 6, 1, 0, 0, 1, 0, time.UTC),
			ok:   true,
		},
		{
			// The attribute only counts seconds since "the" month start:
			// across a month boundary the decoder re-anchors to ref's
			// month, so a late-June encoding read with a July ref lands in
			// July. This ambiguity is inherent to the clock, and the reason
			// the detector passes the receive time as ref.
			name: "month rollover re-anchors to ref month",
			addr: "10.0.0.16", // 16 s after a month start
			ref:  time.Date(2024, 7, 1, 0, 1, 0, 0, time.UTC),
			want: time.Date(2024, 7, 1, 0, 0, 16, 0, time.UTC),
			ok:   true,
		},
		{
			// Ordinary clock skew (decode slightly past ref, within the
			// slack) must NOT trigger re-anchoring.
			name: "decode within skew slack stays in ref month",
			addr: "10.23.222.42", // 1564202 s = June 19 02:30:02
			ref:  ref,            // June 19 02:00:02
			want: time.Date(2024, 6, 19, 2, 30, 2, 0, time.UTC),
			ok:   true,
		},
		{
			// The inverse wrap: a route announced late in May but first
			// observed just after June began decodes weeks into ref's
			// future under June anchoring. Announcements cannot postdate
			// their observation, so the decoder re-anchors to May and the
			// timestamp comes back exact.
			name: "late-month encoding observed after rollover re-anchors to previous month",
			addr: "10.40.220.40", // AggregatorClock(2024-05-31 23:50) = 2677800 s
			ref:  time.Date(2024, 6, 1, 0, 5, 0, 0, time.UTC),
			want: time.Date(2024, 5, 31, 23, 50, 0, 0, time.UTC),
			ok:   true,
		},
		{
			// The 24-bit counter tops out above any month length; the
			// decoder does not clamp, but a value past ref+slack is
			// re-anchored one month back like any other wrap — garbage
			// in, late (previous-month) timestamp out.
			name: "max 24-bit value extends past the month",
			addr: "10.255.255.255",
			ref:  ref,
			want: time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC).Add(16777215 * time.Second),
			ok:   true,
		},
		{
			name: "non-UTC ref anchors to the UTC month",
			addr: "10.0.0.0",
			ref:  time.Date(2024, 6, 19, 2, 0, 2, 0, time.FixedZone("CEST", 2*3600)),
			want: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC),
			ok:   true,
		},
		{name: "non-RIS IPv4 outside 10/8", addr: "11.0.0.1", ref: ref},
		{name: "public IPv4 aggregator", addr: "193.0.0.56", ref: ref},
		{name: "IPv6 aggregator", addr: "2001:7fb::1", ref: ref},
		{
			// A 4-in-6 mapped clock is not Is4: collectors hand the
			// attribute around as raw 4 bytes, so a mapped form means
			// someone re-encoded it — reject rather than guess.
			name: "IPv4-mapped IPv6 form rejected",
			addr: "::ffff:10.0.0.1",
			ref:  ref,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := DecodeAggregatorClock(netip.MustParseAddr(tc.addr), tc.ref)
			if ok != tc.ok {
				t.Fatalf("DecodeAggregatorClock(%s) ok = %v, want %v", tc.addr, ok, tc.ok)
			}
			if ok && !got.Equal(tc.want) {
				t.Errorf("DecodeAggregatorClock(%s) = %v, want %v", tc.addr, got, tc.want)
			}
		})
	}
}

func TestEncodeAuthorPrefix24h(t *testing.T) {
	cases := []struct {
		hour, minute int
		want         string
	}{
		{18, 45, "2a0d:3dc1:1845::/48"},
		{0, 0, "2a0d:3dc1::/48"},
		{9, 15, "2a0d:3dc1:915::/48"},
		{23, 30, "2a0d:3dc1:2330::/48"},
	}
	day := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	for _, c := range cases {
		at := day.Add(time.Duration(c.hour)*time.Hour + time.Duration(c.minute)*time.Minute)
		got, err := EncodeAuthorPrefix(base, at, Recycle24h)
		if err != nil {
			t.Fatalf("%02d:%02d: %v", c.hour, c.minute, err)
		}
		if got != netip.MustParsePrefix(c.want) {
			t.Errorf("%02d:%02d: got %v, want %v", c.hour, c.minute, got, c.want)
		}
		h, m, _, ok := DecodeAuthorPrefix(got, Recycle24h)
		if !ok || h != c.hour || m != c.minute {
			t.Errorf("decode %v: %d:%d ok=%v", got, h, m, ok)
		}
	}
}

func TestEncodeAuthorPrefix15dPaperExamples(t *testing.T) {
	// 2a0d:3dc1:1851::/48 was announced at 18:45 on a day with day%15 == 6
	// (2024-06-21: 21 % 15 = 6; 45 + 6 = 51).
	at := time.Date(2024, 6, 21, 18, 45, 0, 0, time.UTC)
	got, err := EncodeAuthorPrefix(base, at, Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParsePrefix("2a0d:3dc1:1851::/48"); got != want {
		t.Errorf("got %v, want %v", got, want)
	}
	h, m, d, ok := DecodeAuthorPrefix(got, Recycle15d)
	if !ok || h != 18 || m != 45 || d != 6 {
		t.Errorf("decode: %d:%d day%%15=%d ok=%v", h, m, d, ok)
	}

	// 2a0d:3dc1:163::/48 (the extremely long-lived zombie) = hour 16,
	// minute 0, day%15 = 3 (2024-06-18: 18 % 15 = 3).
	at = time.Date(2024, 6, 18, 16, 0, 0, 0, time.UTC)
	got, err = EncodeAuthorPrefix(base, at, Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParsePrefix("2a0d:3dc1:163::/48"); got != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAuthorPrefix15dCollisionBug(t *testing.T) {
	// The paper's documented bug: on 2024-06-15 the prefixes of 00:30 and
	// 03:00 coincide as 2a0d:3dc1:30::/48.
	day := time.Date(2024, 6, 15, 0, 0, 0, 0, time.UTC)
	p1, err := EncodeAuthorPrefix(base, day.Add(30*time.Minute), Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EncodeAuthorPrefix(base, day.Add(3*time.Hour), Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	want := netip.MustParsePrefix("2a0d:3dc1:30::/48")
	if p1 != want || p2 != want {
		t.Errorf("collision: got %v and %v, want both %v", p1, p2, want)
	}
	// The decoder resolves the ambiguity to the later slot (03:00).
	h, m, d, ok := DecodeAuthorPrefix(want, Recycle15d)
	if !ok || h != 3 || m != 0 || d != 0 {
		t.Errorf("decode: %d:%d day%%15=%d ok=%v, want 3:00 day 0", h, m, d, ok)
	}
}

func TestAuthorPrefixCountPerDay(t *testing.T) {
	// The paper announces 96 different prefixes per day; the 24-hour
	// encoding never collides within a day.
	day := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	seen := make(map[netip.Prefix]bool)
	for slot := 0; slot < 96; slot++ {
		p, err := EncodeAuthorPrefix(base, day.Add(time.Duration(slot)*SlotDuration), Recycle24h)
		if err != nil {
			t.Fatal(err)
		}
		seen[p] = true
	}
	if len(seen) != 96 {
		t.Errorf("24h approach: %d distinct prefixes per day, want 96", len(seen))
	}
	// The 15-day encoding collides (the bug). On 2024-06-15 (day%15 == 0)
	// three pairs coincide: 00:30/03:00 ("030"/"30"), 01:30/13:00
	// ("130"), 01:45/14:00 ("145") — the paper documents the first pair.
	day = time.Date(2024, 6, 15, 0, 0, 0, 0, time.UTC)
	seen = make(map[netip.Prefix]bool)
	for slot := 0; slot < 96; slot++ {
		p, err := EncodeAuthorPrefix(base, day.Add(time.Duration(slot)*SlotDuration), Recycle15d)
		if err != nil {
			t.Fatal(err)
		}
		seen[p] = true
	}
	if len(seen) != 93 {
		t.Errorf("15d approach on 2024-06-15: %d distinct prefixes, want 93 (three collision pairs)", len(seen))
	}
}

func TestEncodeAuthorPrefixRejectsUnaligned(t *testing.T) {
	at := time.Date(2024, 6, 5, 10, 7, 0, 0, time.UTC)
	if _, err := EncodeAuthorPrefix(base, at, Recycle24h); err == nil {
		t.Error("unaligned slot accepted")
	}
}

func TestDecodeAuthorPrefixRejectsJunk(t *testing.T) {
	if _, _, _, ok := DecodeAuthorPrefix(netip.MustParsePrefix("2a0d:3dc1::/32"), Recycle24h); ok {
		t.Error("non-/48 accepted")
	}
	// Group with hex letters can't be a decimal timestamp.
	if _, _, _, ok := DecodeAuthorPrefix(netip.MustParsePrefix("2a0d:3dc1:ab00::/48"), Recycle24h); ok {
		t.Error("hex-letter group accepted for 24h")
	}
	if _, _, _, ok := DecodeAuthorPrefix(netip.MustParsePrefix("2a0d:3dc1:9999::/48"), Recycle24h); ok {
		t.Error("minute 99 accepted")
	}
}

func TestRISScheduleEvents(t *testing.T) {
	v4, v6 := DefaultRISPrefixes(12654)
	if len(v4) != 13 || len(v6) != 14 {
		t.Fatalf("default prefixes: %d v4, %d v6", len(v4), len(v6))
	}
	s := &RISSchedule{Prefixes4: v4[:1], Prefixes6: v6[:1], OriginAS: 12654}
	start := time.Date(2018, 7, 19, 0, 0, 0, 0, time.UTC)
	evs := s.Events(start, start.Add(8*time.Hour))
	// Two cycles × two prefixes × (announce + withdraw).
	if len(evs) != 8 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	if !evs[0].Announce || !evs[0].At.Equal(start) {
		t.Errorf("first event: %+v", evs[0])
	}
	if evs[0].Aggregator == nil {
		t.Fatal("announcement without aggregator clock")
	}
	dec, ok := DecodeAggregatorClock(evs[0].Aggregator.Addr, start)
	if !ok || !dec.Equal(start) {
		t.Errorf("aggregator clock decodes to %v", dec)
	}
	// Withdrawals come 2h after announcements.
	for _, ev := range evs {
		if !ev.Announce {
			if ev.At.Sub(start)%(4*time.Hour) != 2*time.Hour {
				t.Errorf("withdraw at odd offset: %v", ev.At)
			}
			if ev.Aggregator != nil {
				t.Error("withdrawal carries aggregator")
			}
		}
	}
}

func TestRISScheduleIntervals(t *testing.T) {
	s := &RISSchedule{Prefixes6: []netip.Prefix{netip.MustParsePrefix("2001:7fb:fe00::/48")}, OriginAS: 12654}
	start := time.Date(2018, 7, 19, 0, 0, 0, 0, time.UTC)
	ivs := s.Intervals(start, start.Add(24*time.Hour))
	if len(ivs) != 6 {
		t.Fatalf("got %d intervals, want 6", len(ivs))
	}
	for i, iv := range ivs {
		if iv.WithdrawAt.Sub(iv.AnnounceAt) != 2*time.Hour {
			t.Errorf("interval %d: withdraw offset %v", i, iv.WithdrawAt.Sub(iv.AnnounceAt))
		}
		if iv.End.Sub(iv.AnnounceAt) != 4*time.Hour {
			t.Errorf("interval %d: end offset %v", i, iv.End.Sub(iv.AnnounceAt))
		}
	}
}

func TestAuthorScheduleEvents(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle24h}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	evs := s.Events(start, start.Add(24*time.Hour))
	// 96 announcements; the 23:45 withdrawal falls outside the window.
	var ann, wd int
	for _, ev := range evs {
		if ev.Announce {
			ann++
		} else {
			wd++
		}
	}
	if ann != 96 || wd != 95 {
		t.Errorf("got %d announcements, %d withdrawals; want 96/95", ann, wd)
	}
	// All announcements carry the clock.
	for _, ev := range evs {
		if ev.Announce && ev.Aggregator == nil {
			t.Fatal("announcement without aggregator")
		}
	}
}

func TestAuthorScheduleStride(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle24h, SlotStride: 4}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	ivs := s.Intervals(start, start.Add(24*time.Hour))
	if len(ivs) != 24 {
		t.Errorf("stride 4: got %d intervals, want 24", len(ivs))
	}
}

func TestAuthorScheduleIntervalsCollision(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle15d}
	start := time.Date(2024, 6, 15, 0, 0, 0, 0, time.UTC)
	ivs := s.Intervals(start, start.Add(24*time.Hour))
	// 96 slots but three collision pairs on this day: the earlier
	// occurrence of each is dropped.
	if len(ivs) != 93 {
		t.Fatalf("got %d intervals, want 93", len(ivs))
	}
	collided := netip.MustParsePrefix("2a0d:3dc1:30::/48")
	var hits []Interval
	for _, iv := range ivs {
		if iv.Prefix == collided {
			hits = append(hits, iv)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("collided prefix has %d intervals, want 1", len(hits))
	}
	if want := start.Add(3 * time.Hour); !hits[0].AnnounceAt.Equal(want) {
		t.Errorf("kept interval announced at %v, want the later slot %v", hits[0].AnnounceAt, want)
	}
}

func TestAuthorScheduleInterval24hEnd(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle24h}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	ivs := s.Intervals(start, start.Add(48*time.Hour))
	if len(ivs) != 192 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// First day's interval for the 00:00 prefix ends when the prefix is
	// reused 24 hours later.
	first := ivs[0]
	if first.End.Sub(first.AnnounceAt) != 24*time.Hour {
		t.Errorf("interval end offset %v, want 24h", first.End.Sub(first.AnnounceAt))
	}
}

func TestAuthorSchedulePrefixes(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle24h}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	ps := s.Prefixes(start, start.Add(48*time.Hour))
	if len(ps) != 96 {
		t.Errorf("two days of 24h-recycled beacons use %d prefixes, want 96", len(ps))
	}
}

func TestScheduleAggregatorASN(t *testing.T) {
	s := &AuthorSchedule{Base: base, OriginAS: 210312, Approach: Recycle24h}
	start := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	evs := s.Events(start, start.Add(time.Hour))
	for _, ev := range evs {
		if ev.Announce && ev.Aggregator.ASN != bgp.ASN(210312) {
			t.Errorf("aggregator ASN %v", ev.Aggregator.ASN)
		}
	}
}
