package beacon

import (
	"net/netip"
	"testing"
	"time"
)

var base4 = netip.MustParsePrefix("93.168.0.0/13")

func TestEncodeAuthorPrefix4Recycle24h(t *testing.T) {
	day := time.Date(2024, 6, 5, 0, 0, 0, 0, time.UTC)
	base := netip.MustParsePrefix("93.175.0.0/17")
	seen := make(map[netip.Prefix]bool)
	for slot := 0; slot < 96; slot++ {
		at := day.Add(time.Duration(slot) * SlotDuration)
		p, err := EncodeAuthorPrefix4(base, at, Recycle24h)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if p.Bits() != 24 {
			t.Fatalf("slot %d: got %v, want a /24", slot, p)
		}
		if !base.Overlaps(p) {
			t.Fatalf("slot %d: %v outside base %v", slot, p, base)
		}
		seen[p] = true
		got, off, ok := DecodeAuthorPrefix4(p, base, Recycle24h)
		if !ok || got != slot {
			t.Errorf("slot %d decodes to %d (ok=%v)", slot, got, ok)
		}
		if off != time.Duration(slot)*SlotDuration {
			t.Errorf("slot %d offset %v", slot, off)
		}
	}
	if len(seen) != 96 {
		t.Errorf("%d distinct prefixes per day, want 96 (no collisions)", len(seen))
	}
	// First slot of the day is the base /24 itself.
	p, _ := EncodeAuthorPrefix4(base, day, Recycle24h)
	if p != netip.MustParsePrefix("93.175.0.0/24") {
		t.Errorf("slot 0 = %v", p)
	}
}

func TestEncodeAuthorPrefix4Recycle15d(t *testing.T) {
	// 1440 slots over 15 days: all distinct within the cycle, and the
	// prefix repeats exactly 15 days later.
	start := time.Date(2024, 6, 10, 11, 30, 0, 0, time.UTC)
	p1, err := EncodeAuthorPrefix4(base4, start, Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EncodeAuthorPrefix4(base4, start.Add(15*24*time.Hour), Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("prefix does not recycle after 15 days: %v vs %v", p1, p2)
	}
	p3, err := EncodeAuthorPrefix4(base4, start.Add(24*time.Hour), Recycle15d)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p3 {
		t.Error("prefix reused within the 15-day cycle")
	}
	// All 1440 slots of one cycle are distinct.
	seen := make(map[netip.Prefix]bool)
	cycleStart := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1440; i++ {
		p, err := EncodeAuthorPrefix4(base4, cycleStart.Add(time.Duration(i)*SlotDuration), Recycle15d)
		if err != nil {
			t.Fatal(err)
		}
		seen[p] = true
	}
	if len(seen) != 1440 {
		t.Errorf("%d distinct prefixes per 15-day cycle, want 1440", len(seen))
	}
}

func TestEncodeAuthorPrefix4Errors(t *testing.T) {
	at := time.Date(2024, 6, 5, 12, 0, 0, 0, time.UTC)
	// Unaligned slot.
	if _, err := EncodeAuthorPrefix4(base4, at.Add(7*time.Minute), Recycle24h); err == nil {
		t.Error("unaligned slot accepted")
	}
	// IPv6 base.
	if _, err := EncodeAuthorPrefix4(netip.MustParsePrefix("2001:db8::/32"), at, Recycle24h); err == nil {
		t.Error("IPv6 base accepted")
	}
	// Base too small for the recycle period: a /20 holds 16 /24s.
	if _, err := EncodeAuthorPrefix4(netip.MustParsePrefix("198.51.0.0/20"), at, Recycle24h); err == nil {
		t.Error("undersized base accepted")
	}
	// Base narrower than /24.
	if _, err := EncodeAuthorPrefix4(netip.MustParsePrefix("198.51.100.0/25"), at, Recycle24h); err == nil {
		t.Error("/25 base accepted")
	}
}

func TestDecodeAuthorPrefix4Rejects(t *testing.T) {
	base := netip.MustParsePrefix("93.175.0.0/17")
	if _, _, ok := DecodeAuthorPrefix4(netip.MustParsePrefix("10.0.0.0/24"), base, Recycle24h); ok {
		t.Error("prefix outside base accepted")
	}
	if _, _, ok := DecodeAuthorPrefix4(netip.MustParsePrefix("93.175.0.0/23"), base, Recycle24h); ok {
		t.Error("non-/24 accepted")
	}
	// Slot index beyond the approach's count.
	if _, _, ok := DecodeAuthorPrefix4(netip.MustParsePrefix("93.175.120.0/24"), base, Recycle24h); ok {
		t.Error("slot 120 accepted for a 96-slot day")
	}
}

func TestIPv4PrefixBudget(t *testing.T) {
	// The paper's motivation: the whole 24h experiment fits in a /17 and
	// the 15-day one in a /13 — document the arithmetic as a test.
	if got := 1 << (24 - 17); got < 96 {
		t.Errorf("/17 holds %d /24s, cannot fit 96 slots", got)
	}
	if got := 1 << (24 - 13); got < 1440 {
		t.Errorf("/13 holds %d /24s, cannot fit 1440 slots", got)
	}
}
