package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"zombiescope/internal/bgp"
)

// Peer type bits in the PEER_INDEX_TABLE (RFC 6396 §4.3.1).
const (
	peerTypeIPv6 byte = 0x01
	peerTypeAS4  byte = 0x02
)

// PeerEntry is one peer in a PEER_INDEX_TABLE. RIB entries reference peers
// by their index in the table.
type PeerEntry struct {
	BGPID netip.Addr // router ID, always IPv4-shaped
	Addr  netip.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 PEER_INDEX_TABLE record that must
// precede RIB records in a dump file.
type PeerIndexTable struct {
	Timestamp   time.Time
	CollectorID netip.Addr // IPv4 router ID of the collector
	ViewName    string
	Peers       []PeerEntry
}

// RecordTime implements Record.
func (t *PeerIndexTable) RecordTime() time.Time { return t.Timestamp }

// RIBEntry is one peer's path for the prefix of the surrounding RIB record.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	Attrs          bgp.PathAttributes
}

// RIB is a TABLE_DUMP_V2 RIB_IPVx_UNICAST record: the set of paths for one
// prefix, one entry per peer that has the route.
type RIB struct {
	Timestamp time.Time
	Sequence  uint32
	Prefix    netip.Prefix
	Entries   []RIBEntry
}

// RecordTime implements Record.
func (r *RIB) RecordTime() time.Time { return r.Timestamp }

func (t *PeerIndexTable) appendBody(dst []byte) ([]byte, error) {
	if !t.CollectorID.Is4() {
		return dst, fmt.Errorf("%w: collector ID must be IPv4", ErrBadRecord)
	}
	id := t.CollectorID.As4()
	dst = append(dst, id[:]...)
	if len(t.ViewName) > 0xffff {
		return dst, ErrBadViewName
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.ViewName)))
	dst = append(dst, t.ViewName...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		typ := peerTypeAS4
		if !p.Addr.Is4() {
			typ |= peerTypeIPv6
		}
		dst = append(dst, typ)
		if !p.BGPID.Is4() {
			return dst, fmt.Errorf("%w: peer BGP ID must be IPv4", ErrBadRecord)
		}
		bid := p.BGPID.As4()
		dst = append(dst, bid[:]...)
		if p.Addr.Is4() {
			a := p.Addr.As4()
			dst = append(dst, a[:]...)
		} else {
			a := p.Addr.As16()
			dst = append(dst, a[:]...)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.AS))
	}
	return dst, nil
}

func decodePeerIndexTable(ts time.Time, b []byte) (*PeerIndexTable, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("%w: peer index table header", ErrTruncated)
	}
	t := &PeerIndexTable{Timestamp: ts, CollectorID: netip.AddrFrom4([4]byte(b[:4]))}
	vlen := int(binary.BigEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) < vlen+2 {
		return nil, fmt.Errorf("%w: view name", ErrTruncated)
	}
	t.ViewName = string(b[:vlen])
	count := int(binary.BigEndian.Uint16(b[vlen:]))
	b = b[vlen+2:]
	t.Peers = make([]PeerEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("%w: peer entry %d", ErrTruncated, i)
		}
		typ := b[0]
		var pe PeerEntry
		pe.BGPID = netip.AddrFrom4([4]byte(b[1:5]))
		b = b[5:]
		addrLen := 4
		if typ&peerTypeIPv6 != 0 {
			addrLen = 16
		}
		asLen := 2
		if typ&peerTypeAS4 != 0 {
			asLen = 4
		}
		if len(b) < addrLen+asLen {
			return nil, fmt.Errorf("%w: peer entry %d body", ErrTruncated, i)
		}
		if addrLen == 4 {
			pe.Addr = netip.AddrFrom4([4]byte(b[:4]))
		} else {
			pe.Addr = netip.AddrFrom16([16]byte(b[:16]))
		}
		b = b[addrLen:]
		if asLen == 2 {
			pe.AS = bgp.ASN(binary.BigEndian.Uint16(b))
		} else {
			pe.AS = bgp.ASN(binary.BigEndian.Uint32(b))
		}
		b = b[asLen:]
		t.Peers = append(t.Peers, pe)
	}
	return t, nil
}

// ribAttrs encodes a RIB entry's path attributes. RFC 6396 §4.3.4: the
// MP_REACH_NLRI attribute in TABLE_DUMP_V2 carries only the next-hop length
// and next hop, because AFI/SAFI/NLRI are already in the entry header.
func appendRIBAttrs(dst []byte, attrs *bgp.PathAttributes) ([]byte, error) {
	trimmed := *attrs
	mpReach := trimmed.MPReach
	trimmed.MPReach = nil
	out, err := trimmed.AppendWireFormat(dst)
	if err != nil {
		return dst, err
	}
	if mpReach != nil {
		nh := mpReach.NextHop.AsSlice()
		out = append(out, bgp.FlagOptional, bgp.AttrMPReachNLRI, byte(1+len(nh)), byte(len(nh)))
		out = append(out, nh...)
	}
	return out, nil
}

// decodeRIBAttrs decodes a RIB entry attribute block, reconstructing a full
// MP_REACH_NLRI (with the record's prefix as NLRI) from the abbreviated
// table-dump form.
func decodeRIBAttrs(b []byte, prefix netip.Prefix) (bgp.PathAttributes, error) {
	var rest []byte
	var nextHop netip.Addr
	sawMPReach := false
	for len(b) > 0 {
		if len(b) < 3 {
			return bgp.PathAttributes{}, fmt.Errorf("%w: RIB attribute header", ErrTruncated)
		}
		flags, typ := b[0], b[1]
		var vlen, off int
		if flags&bgp.FlagExtLen != 0 {
			if len(b) < 4 {
				return bgp.PathAttributes{}, fmt.Errorf("%w: RIB attribute ext length", ErrTruncated)
			}
			vlen = int(binary.BigEndian.Uint16(b[2:]))
			off = 4
		} else {
			vlen = int(b[2])
			off = 3
		}
		if len(b) < off+vlen {
			return bgp.PathAttributes{}, fmt.Errorf("%w: RIB attribute value", ErrTruncated)
		}
		if typ == bgp.AttrMPReachNLRI {
			val := b[off : off+vlen]
			if len(val) < 1 || len(val) < 1+int(val[0]) {
				return bgp.PathAttributes{}, fmt.Errorf("%w: abbreviated MP_REACH", ErrBadRecord)
			}
			nhLen := int(val[0])
			switch nhLen {
			case 4:
				nextHop = netip.AddrFrom4([4]byte(val[1:5]))
			case 16, 32:
				nextHop = netip.AddrFrom16([16]byte(val[1:17]))
			default:
				return bgp.PathAttributes{}, fmt.Errorf("%w: MP_REACH next hop length %d", ErrBadRecord, nhLen)
			}
			sawMPReach = true
		} else {
			rest = append(rest, b[:off+vlen]...)
		}
		b = b[off+vlen:]
	}
	attrs, err := bgp.DecodePathAttributes(rest)
	if err != nil {
		return bgp.PathAttributes{}, err
	}
	if sawMPReach {
		attrs.MPReach = &bgp.MPReachNLRI{
			AFI:     bgp.PrefixAFI(prefix),
			SAFI:    bgp.SAFIUnicast,
			NextHop: nextHop,
			NLRI:    []netip.Prefix{prefix},
		}
	}
	return attrs, nil
}

func (r *RIB) appendBody(dst []byte) ([]byte, error) {
	if len(r.Entries) == 0 {
		return dst, ErrEmptyRIBEntry
	}
	dst = binary.BigEndian.AppendUint32(dst, r.Sequence)
	dst, err := bgp.AppendPrefix(dst, r.Prefix)
	if err != nil {
		return dst, err
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Entries)))
	for i := range r.Entries {
		e := &r.Entries[i]
		dst = binary.BigEndian.AppendUint16(dst, e.PeerIndex)
		ot := e.OriginatedTime.Unix()
		if ot < 0 {
			return dst, ErrBadTimestamp
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(ot))
		attrs, err := appendRIBAttrs(nil, &e.Attrs)
		if err != nil {
			return dst, err
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
		dst = append(dst, attrs...)
	}
	return dst, nil
}

func decodeRIB(ts time.Time, b []byte, afi bgp.AFI) (*RIB, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: RIB header", ErrTruncated)
	}
	r := &RIB{Timestamp: ts, Sequence: binary.BigEndian.Uint32(b)}
	b = b[4:]
	prefix, n, err := bgp.DecodePrefix(b, afi)
	if err != nil {
		return nil, err
	}
	r.Prefix = prefix
	b = b[n:]
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: RIB entry count", ErrTruncated)
	}
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	r.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: RIB entry %d header", ErrTruncated, i)
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(b)
		e.OriginatedTime = time.Unix(int64(binary.BigEndian.Uint32(b[2:])), 0).UTC()
		alen := int(binary.BigEndian.Uint16(b[6:]))
		b = b[8:]
		if len(b) < alen {
			return nil, fmt.Errorf("%w: RIB entry %d attributes", ErrTruncated, i)
		}
		attrs, err := decodeRIBAttrs(b[:alen], prefix)
		if err != nil {
			return nil, err
		}
		e.Attrs = attrs
		b = b[alen:]
		r.Entries = append(r.Entries, e)
	}
	return r, nil
}
