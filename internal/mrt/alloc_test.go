package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

// allocTestArchive encodes an archive of BGP4MP message and state-change
// records, the streaming hot path's staple diet.
func allocTestArchive(t *testing.T, records int) []byte {
	t.Helper()
	u := &bgp.Update{
		NLRI: []netip.Prefix{netip.MustParsePrefix("93.175.146.0/24")},
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			ASPath:    bgp.ASPath{Segments: []bgp.PathSegment{{Type: bgp.ASSequence, ASNs: []bgp.ASN{64500, 64501}}}},
			NextHop:   netip.MustParseAddr("192.0.2.1"),
		},
	}
	wire, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	for i := 0; i < records; i++ {
		var rec Record
		if i%16 == 15 {
			rec = &BGP4MPStateChange{
				Timestamp: ts.Add(time.Duration(i) * time.Second),
				PeerAS:    64500, LocalAS: 64501, AFI: bgp.AFIIPv4,
				PeerIP: netip.MustParseAddr("192.0.2.2"), LocalIP: netip.MustParseAddr("192.0.2.3"),
				OldState: StateEstablished, NewState: StateIdle,
			}
		} else {
			rec = &BGP4MPMessage{
				Timestamp: ts.Add(time.Duration(i) * time.Second),
				PeerAS:    64500, LocalAS: 64501, AFI: bgp.AFIIPv4,
				PeerIP: netip.MustParseAddr("192.0.2.2"), LocalIP: netip.MustParseAddr("192.0.2.3"),
				Data: wire,
			}
		}
		if err := wr.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReaderBorrowAllocs is the allocation regression fence for the pooled
// reader: a full borrow-mode pass over the archive must cost a handful of
// setup allocations (reader, bytes.Reader, possibly a pool miss), not
// per-record ones.
func TestReaderBorrowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const records = 200
	data := allocTestArchive(t, records)
	readAll := func() {
		rd := NewReader(bytes.NewReader(data))
		rd.SetBorrow(true)
		n := 0
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil {
				t.Fatal("nil record")
			}
			n++
		}
		rd.Release()
		if n != records {
			t.Fatalf("decoded %d records, want %d", n, records)
		}
	}
	readAll() // warm the buffer pool
	avg := testing.AllocsPerRun(100, readAll)
	perRecord := avg / records
	if perRecord > 0.05 {
		t.Errorf("borrow-mode pass allocates %.1f allocs (%.3f/record), want near-zero per record", avg, perRecord)
	}
}
