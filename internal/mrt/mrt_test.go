package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

var testTime = time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)

func testUpdateBytes(t *testing.T) []byte {
	t.Helper()
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			Origin:    bgp.OriginIGP,
			ASPath:    bgp.NewASPath(25091, 8298, 210312),
			MPReach: &bgp.MPReachNLRI{
				AFI:     bgp.AFIIPv6,
				SAFI:    bgp.SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::ff"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1200::/48")},
			},
		},
	}
	b, err := u.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBGP4MPMessageRoundTrip(t *testing.T) {
	msg := &BGP4MPMessage{
		Timestamp: testTime,
		PeerAS:    25091,
		LocalAS:   12654,
		AFI:       bgp.AFIIPv6,
		PeerIP:    netip.MustParseAddr("2001:678:3f4:5::1"),
		LocalIP:   netip.MustParseAddr("2001:7f8::1"),
		Data:      testUpdateBytes(t),
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(msg); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	got, ok := recs[0].(*BGP4MPMessage)
	if !ok {
		t.Fatalf("got %T", recs[0])
	}
	if !got.Timestamp.Equal(testTime) {
		t.Errorf("timestamp %v", got.Timestamp)
	}
	if got.PeerAS != 25091 || got.LocalAS != 12654 {
		t.Errorf("ASNs %v/%v", got.PeerAS, got.LocalAS)
	}
	if got.PeerIP != msg.PeerIP || got.LocalIP != msg.LocalIP {
		t.Errorf("addresses %v/%v", got.PeerIP, got.LocalIP)
	}
	u, err := got.Update()
	if err != nil {
		t.Fatalf("Update(): %v", err)
	}
	if want := "25091 8298 210312"; u.Attrs.ASPath.String() != want {
		t.Errorf("AS path %q, want %q", u.Attrs.ASPath, want)
	}
}

func TestBGP4MPMessageIPv4SessionCarryingIPv6(t *testing.T) {
	// The paper notes peer 176.119.234.201 exchanges IPv6 AFI data over an
	// IPv4 BGP session: the session addressing AFI is independent of the
	// NLRI family inside the message.
	msg := &BGP4MPMessage{
		Timestamp: testTime,
		PeerAS:    211509,
		LocalAS:   12654,
		AFI:       bgp.AFIIPv4,
		PeerIP:    netip.MustParseAddr("176.119.234.201"),
		LocalIP:   netip.MustParseAddr("192.0.2.1"),
		Data:      testUpdateBytes(t),
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(msg); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := recs[0].(*BGP4MPMessage)
	if got.PeerIP != msg.PeerIP {
		t.Errorf("peer IP %v", got.PeerIP)
	}
	u, err := got.Update()
	if err != nil {
		t.Fatal(err)
	}
	if u.Attrs.MPReach == nil || u.Attrs.MPReach.AFI != bgp.AFIIPv6 {
		t.Error("IPv6 NLRI lost on IPv4 session record")
	}
}

func TestStateChangeRoundTrip(t *testing.T) {
	sc := &BGP4MPStateChange{
		Timestamp: testTime,
		PeerAS:    211380,
		LocalAS:   12654,
		AFI:       bgp.AFIIPv6,
		PeerIP:    netip.MustParseAddr("2a0c:9a40:1031::504"),
		LocalIP:   netip.MustParseAddr("2001:7f8::2"),
		OldState:  StateEstablished,
		NewState:  StateIdle,
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(sc); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := recs[0].(*BGP4MPStateChange)
	if !ok {
		t.Fatalf("got %T", recs[0])
	}
	if !got.Down() {
		t.Error("Established->Idle not reported as Down")
	}
	if got.Up() {
		t.Error("Established->Idle reported as Up")
	}
	if got.OldState != StateEstablished || got.NewState != StateIdle {
		t.Errorf("states %v -> %v", got.OldState, got.NewState)
	}
}

func TestStateChangeUpDown(t *testing.T) {
	up := &BGP4MPStateChange{OldState: StateOpenConfirm, NewState: StateEstablished}
	if !up.Up() || up.Down() {
		t.Error("OpenConfirm->Established misclassified")
	}
	neither := &BGP4MPStateChange{OldState: StateIdle, NewState: StateConnect}
	if neither.Up() || neither.Down() {
		t.Error("Idle->Connect misclassified")
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	tbl := &PeerIndexTable{
		Timestamp:   testTime,
		CollectorID: netip.MustParseAddr("193.0.4.28"),
		ViewName:    "rrc25",
		Peers: []PeerEntry{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("2a0c:9a40:1031::504"), AS: 211380},
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("176.119.234.201"), AS: 211509},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(tbl); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := recs[0].(*PeerIndexTable)
	if !ok {
		t.Fatalf("got %T", recs[0])
	}
	if got.ViewName != "rrc25" || got.CollectorID != tbl.CollectorID {
		t.Errorf("header: %q %v", got.ViewName, got.CollectorID)
	}
	if len(got.Peers) != 2 {
		t.Fatalf("got %d peers", len(got.Peers))
	}
	for i := range tbl.Peers {
		if got.Peers[i] != tbl.Peers[i] {
			t.Errorf("peer %d: got %+v, want %+v", i, got.Peers[i], tbl.Peers[i])
		}
	}
}

func TestRIBRoundTripIPv6(t *testing.T) {
	rib := &RIB{
		Timestamp: testTime,
		Sequence:  7,
		Prefix:    netip.MustParsePrefix("2a0d:3dc1:163::/48"),
		Entries: []RIBEntry{
			{
				PeerIndex:      0,
				OriginatedTime: testTime.Add(-2 * time.Hour),
				Attrs: bgp.PathAttributes{
					HasOrigin: true,
					Origin:    bgp.OriginIGP,
					ASPath:    bgp.NewASPath(9304, 6939, 43100, 25091, 8298, 210312),
					MPReach: &bgp.MPReachNLRI{
						AFI:     bgp.AFIIPv6,
						SAFI:    bgp.SAFIUnicast,
						NextHop: netip.MustParseAddr("2001:db8::9"),
						NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:163::/48")},
					},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rib); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := recs[0].(*RIB)
	if !ok {
		t.Fatalf("got %T", recs[0])
	}
	if got.Prefix != rib.Prefix || got.Sequence != 7 {
		t.Errorf("header: %v seq %d", got.Prefix, got.Sequence)
	}
	if len(got.Entries) != 1 {
		t.Fatalf("got %d entries", len(got.Entries))
	}
	e := got.Entries[0]
	if !e.OriginatedTime.Equal(rib.Entries[0].OriginatedTime) {
		t.Errorf("originated time %v", e.OriginatedTime)
	}
	if want := "9304 6939 43100 25091 8298 210312"; e.Attrs.ASPath.String() != want {
		t.Errorf("AS path %q", e.Attrs.ASPath)
	}
	// The abbreviated MP_REACH must be reconstructed with next hop and the
	// record prefix as NLRI.
	if e.Attrs.MPReach == nil {
		t.Fatal("MP_REACH not reconstructed")
	}
	if e.Attrs.MPReach.NextHop != rib.Entries[0].Attrs.MPReach.NextHop {
		t.Errorf("next hop %v", e.Attrs.MPReach.NextHop)
	}
	if len(e.Attrs.MPReach.NLRI) != 1 || e.Attrs.MPReach.NLRI[0] != rib.Prefix {
		t.Errorf("NLRI %v", e.Attrs.MPReach.NLRI)
	}
}

func TestRIBRoundTripIPv4(t *testing.T) {
	rib := &RIB{
		Timestamp: testTime,
		Sequence:  1,
		Prefix:    netip.MustParsePrefix("93.175.149.0/24"),
		Entries: []RIBEntry{{
			PeerIndex:      1,
			OriginatedTime: testTime,
			Attrs: bgp.PathAttributes{
				HasOrigin: true,
				ASPath:    bgp.NewASPath(12654),
				NextHop:   netip.MustParseAddr("192.0.2.9"),
			},
		}},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rib); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := recs[0].(*RIB)
	if got.Prefix != rib.Prefix {
		t.Errorf("prefix %v", got.Prefix)
	}
	if got.Entries[0].Attrs.NextHop != rib.Entries[0].Attrs.NextHop {
		t.Errorf("next hop %v", got.Entries[0].Attrs.NextHop)
	}
}

func TestMultiRecordStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		&BGP4MPStateChange{Timestamp: testTime, PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
			PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
			OldState: StateIdle, NewState: StateEstablished},
		&BGP4MPMessage{Timestamp: testTime.Add(time.Second), PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
			PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
			Data: testUpdateBytes(t)},
		&BGP4MPMessage{Timestamp: testTime.Add(2 * time.Second), PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
			PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
			Data: testUpdateBytes(t)},
	}
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	// Timestamps must be monotone as written.
	for i := 1; i < len(got); i++ {
		if got[i].RecordTime().Before(got[i-1].RecordTime()) {
			t.Errorf("record %d out of order", i)
		}
	}
}

func TestReaderSkipsUnknownRecords(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft an unknown record type (type 99), then a valid one.
	unknown := make([]byte, HeaderLen+4)
	unknown[4], unknown[5] = 0, 99
	unknown[11] = 4 // length 4
	buf.Write(unknown)
	w := NewWriter(&buf)
	sc := &BGP4MPStateChange{Timestamp: testTime, PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
		PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
		OldState: StateEstablished, NewState: StateIdle}
	if err := w.Write(sc); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (unknown skipped)", len(recs))
	}
	if _, ok := recs[0].(*BGP4MPStateChange); !ok {
		t.Errorf("got %T", recs[0])
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sc := &BGP4MPStateChange{Timestamp: testTime, PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
		PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
		OldState: StateEstablished, NewState: StateIdle}
	if err := w.Write(sc); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	_, err := ReadAll(bytes.NewReader(full[:len(full)-2]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestReaderRejectsHugeRecord(t *testing.T) {
	hdr := make([]byte, HeaderLen)
	hdr[4], hdr[5] = 0, byte(TypeBGP4MP)
	hdr[8] = 0xff // length = huge
	hdr[9] = 0xff
	hdr[10] = 0xff
	hdr[11] = 0xff
	_, err := ReadAll(bytes.NewReader(hdr))
	if !errors.Is(err, ErrRecordTooBig) {
		t.Errorf("err = %v, want ErrRecordTooBig", err)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	recs, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Errorf("got %v, %v", recs, err)
	}
}

func TestReaderMidHeaderEOF(t *testing.T) {
	rd := NewReader(bytes.NewReader(make([]byte, 5)))
	_, err := rd.Next()
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestWriterRejectsPreEpochTimestamp(t *testing.T) {
	sc := &BGP4MPStateChange{Timestamp: time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC),
		PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
		PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2")}
	err := NewWriter(io.Discard).Write(sc)
	if !errors.Is(err, ErrBadTimestamp) {
		t.Errorf("err = %v, want ErrBadTimestamp", err)
	}
}

func TestWriterRejectsEmptyRIB(t *testing.T) {
	rib := &RIB{Timestamp: testTime, Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	err := NewWriter(io.Discard).Write(rib)
	if !errors.Is(err, ErrEmptyRIBEntry) {
		t.Errorf("err = %v, want ErrEmptyRIBEntry", err)
	}
}

func TestLegacy2ByteSubtypeDecode(t *testing.T) {
	// Hand-encode a legacy BGP4MP_MESSAGE (subtype 1, 2-byte ASNs).
	body := []byte{
		0x61, 0x23, // peer AS 24867
		0x31, 0x6e, // local AS 12654
		0, 0, // ifindex
		0, 1, // AFI IPv4
		192, 0, 2, 1, // peer IP
		192, 0, 2, 2, // local IP
	}
	body = append(body, bgp.NewKeepalive()...)
	var buf bytes.Buffer
	hdr := make([]byte, HeaderLen)
	hdr[4], hdr[5] = 0, byte(TypeBGP4MP)
	hdr[6], hdr[7] = 0, byte(SubtypeMessage)
	hdr[8] = byte(len(body) >> 24)
	hdr[9] = byte(len(body) >> 16)
	hdr[10] = byte(len(body) >> 8)
	hdr[11] = byte(len(body))
	buf.Write(hdr)
	buf.Write(body)
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := recs[0].(*BGP4MPMessage)
	if !ok {
		t.Fatalf("got %T", recs[0])
	}
	if m.PeerAS != 24867 || m.LocalAS != 12654 {
		t.Errorf("legacy ASNs %v/%v", m.PeerAS, m.LocalAS)
	}
}

func TestSessionStateString(t *testing.T) {
	if StateEstablished.String() != "Established" || StateIdle.String() != "Idle" {
		t.Error("state strings wrong")
	}
	if SessionState(42).String() != "State(42)" {
		t.Error("unknown state string wrong")
	}
}
