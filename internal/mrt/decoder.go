package mrt

import (
	"sync"
	"sync/atomic"
	"time"

	"zombiescope/internal/bgp"
)

// Decoder decodes MRT record bodies, optionally reusing scratch record
// structs across calls.
//
// With Borrow unset, Decode is equivalent to DecodeRecord: every record
// owns its memory. With Borrow set, BGP4MP message and state-change
// records are decoded into the Decoder's internal scratch structs —
// overwritten by the next Decode — and BGP4MPMessage.Data aliases the
// body buffer, so the caller must fully consume each record before the
// next Decode call (and before the buffer is reused). TABLE_DUMP_V2
// records (RIB, PeerIndexTable) are always freshly allocated and never
// alias the body; they are safe to retain in either mode.
//
// A Decoder must not be shared between goroutines.
type Decoder struct {
	Borrow bool
	msg    BGP4MPMessage
	state  BGP4MPStateChange
}

// Decode decodes a single MRT record body given its header fields.
// Record types this package does not model decode to (nil, nil).
func (d *Decoder) Decode(ts time.Time, typ, subtype uint16, body []byte) (Record, error) {
	switch typ {
	case TypeBGP4MP:
		switch subtype {
		case SubtypeMessage, SubtypeMessageAS4:
			var m *BGP4MPMessage
			if d.Borrow {
				m = &d.msg
			} else {
				m = &BGP4MPMessage{}
			}
			if err := decodeBGP4MPMessageInto(m, ts, body, subtype == SubtypeMessageAS4, d.Borrow); err != nil {
				return nil, err
			}
			return m, nil
		case SubtypeStateChange, SubtypeStateChangeAS4:
			var s *BGP4MPStateChange
			if d.Borrow {
				s = &d.state
			} else {
				s = &BGP4MPStateChange{}
			}
			if err := decodeBGP4MPStateChangeInto(s, ts, body, subtype == SubtypeStateChangeAS4); err != nil {
				return nil, err
			}
			return s, nil
		}
	case TypeTableDumpV2:
		switch subtype {
		case SubtypePeerIndexTable:
			return decodePeerIndexTable(ts, body)
		case SubtypeRIBIPv4Unicast:
			return decodeRIB(ts, body, bgp.AFIIPv4)
		case SubtypeRIBIPv6Unicast:
			return decodeRIB(ts, body, bgp.AFIIPv6)
		}
	}
	return nil, nil // unsupported; caller loop skips
}

// PoolStats is a snapshot of the package-wide pooled-buffer counters,
// accumulated by Readers as they flush (Reader.Release) and read back by
// the pipeline's observability layer.
type PoolStats struct {
	// Gets counts buffers taken from the pool.
	Gets uint64
	// Reuses counts record bodies served by an already-large-enough
	// buffer (the zero-allocation steady state).
	Reuses uint64
	// Grows counts record bodies that forced a buffer growth.
	Grows uint64
	// Bytes counts record-body bytes decoded through pooled buffers.
	Bytes uint64
}

var (
	poolGets   atomic.Uint64
	poolReuses atomic.Uint64
	poolGrows  atomic.Uint64
	poolBytes  atomic.Uint64
)

// ReadPoolStats returns the package-wide pooled-buffer counters.
func ReadPoolStats() PoolStats {
	return PoolStats{
		Gets:   poolGets.Load(),
		Reuses: poolReuses.Load(),
		Grows:  poolGrows.Load(),
		Bytes:  poolBytes.Load(),
	}
}

// flushPoolStats folds a Reader's local counters into the package totals
// and zeroes them. Local accumulation keeps atomics off the per-record
// path.
func flushPoolStats(s *PoolStats) {
	if s.Gets != 0 {
		poolGets.Add(s.Gets)
	}
	if s.Reuses != 0 {
		poolReuses.Add(s.Reuses)
	}
	if s.Grows != 0 {
		poolGrows.Add(s.Grows)
	}
	if s.Bytes != 0 {
		poolBytes.Add(s.Bytes)
	}
	*s = PoolStats{}
}

// initialBodyCap covers the vast majority of real MRT records (BGP
// messages are at most 4 KiB; RIB records run larger), so pooled buffers
// rarely grow after warm-up.
const initialBodyCap = 16 << 10

// bodyPool recycles record-body buffers across Readers. Buffers are
// stored as *[]byte to avoid an allocation per Put.
var bodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, initialBodyCap)
		return &b
	},
}
