//go:build !race

package mrt

const raceEnabled = false
