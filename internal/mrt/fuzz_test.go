package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

// FuzzReader drives the MRT reader with mutated streams. Run with
// `go test -fuzz FuzzReader ./internal/mrt`.
func FuzzReader(f *testing.F) {
	// Seed with a real multi-record stream.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	w.Write(&BGP4MPStateChange{Timestamp: ts, PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
		PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
		OldState: StateActive, NewState: StateEstablished})
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			ASPath:    bgp.NewASPath(25091, 8298, 210312),
			MPReach: &bgp.MPReachNLRI{
				AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1200::/48")},
			},
		},
	}
	wire, _ := u.AppendWireFormat(nil)
	w.Write(&BGP4MPMessage{Timestamp: ts, PeerAS: 1, LocalAS: 2, AFI: bgp.AFIIPv4,
		PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
		Data: wire})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input must yield an error, not a panic
			}
			// Decoded records must re-encode (writer accepts them) or
			// fail cleanly.
			var out bytes.Buffer
			_ = NewWriter(&out).Write(rec)
		}
	})
}
