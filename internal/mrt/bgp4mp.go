package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"zombiescope/internal/bgp"
)

// BGP4MPMessage is a BGP4MP_MESSAGE(_AS4) record: one BGP message as
// exchanged between a collector and one of its peers, with addressing
// context. Data holds the raw BGP message including the common header.
type BGP4MPMessage struct {
	Timestamp time.Time
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	IfIndex   uint16
	AFI       bgp.AFI // address family of the *session* addresses below
	PeerIP    netip.Addr
	LocalIP   netip.Addr
	Data      []byte
}

// RecordTime implements Record.
func (m *BGP4MPMessage) RecordTime() time.Time { return m.Timestamp }

// Update decodes the carried BGP message as an UPDATE.
func (m *BGP4MPMessage) Update() (*bgp.Update, error) { return bgp.DecodeUpdate(m.Data) }

// BGP4MPStateChange is a BGP4MP_STATE_CHANGE(_AS4) record reporting a peer
// session FSM transition.
type BGP4MPStateChange struct {
	Timestamp time.Time
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	IfIndex   uint16
	AFI       bgp.AFI
	PeerIP    netip.Addr
	LocalIP   netip.Addr
	OldState  SessionState
	NewState  SessionState
}

// RecordTime implements Record.
func (s *BGP4MPStateChange) RecordTime() time.Time { return s.Timestamp }

// Down reports whether the transition leaves Established, i.e. the session
// dropped and the peer's routes must be considered flushed.
func (s *BGP4MPStateChange) Down() bool {
	return s.OldState == StateEstablished && s.NewState != StateEstablished
}

// Up reports whether the transition enters Established.
func (s *BGP4MPStateChange) Up() bool { return s.NewState == StateEstablished }

func appendAddrPair(dst []byte, afi bgp.AFI, peer, local netip.Addr) ([]byte, error) {
	switch afi {
	case bgp.AFIIPv4:
		if !peer.Is4() || !local.Is4() {
			return dst, fmt.Errorf("%w: AFI IPv4 with non-IPv4 session address", ErrBadRecord)
		}
		p, l := peer.As4(), local.As4()
		dst = append(dst, p[:]...)
		dst = append(dst, l[:]...)
	case bgp.AFIIPv6:
		if peer.Is4() || local.Is4() {
			return dst, fmt.Errorf("%w: AFI IPv6 with IPv4 session address", ErrBadRecord)
		}
		p, l := peer.As16(), local.As16()
		dst = append(dst, p[:]...)
		dst = append(dst, l[:]...)
	default:
		return dst, fmt.Errorf("%w: session AFI %d", ErrBadRecord, afi)
	}
	return dst, nil
}

func decodeAddrPair(b []byte, afi bgp.AFI) (peer, local netip.Addr, n int, err error) {
	var size int
	switch afi {
	case bgp.AFIIPv4:
		size = 4
	case bgp.AFIIPv6:
		size = 16
	default:
		return netip.Addr{}, netip.Addr{}, 0, fmt.Errorf("%w: session AFI %d", ErrBadRecord, afi)
	}
	if len(b) < 2*size {
		return netip.Addr{}, netip.Addr{}, 0, fmt.Errorf("%w: session addresses", ErrTruncated)
	}
	if size == 4 {
		peer = netip.AddrFrom4([4]byte(b[:4]))
		local = netip.AddrFrom4([4]byte(b[4:8]))
	} else {
		peer = netip.AddrFrom16([16]byte(b[:16]))
		local = netip.AddrFrom16([16]byte(b[16:32]))
	}
	return peer, local, 2 * size, nil
}

// appendBody serializes the record body (after the MRT common header).
func (m *BGP4MPMessage) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.PeerAS))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.LocalAS))
	dst = binary.BigEndian.AppendUint16(dst, m.IfIndex)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.AFI))
	dst, err := appendAddrPair(dst, m.AFI, m.PeerIP, m.LocalIP)
	if err != nil {
		return dst, err
	}
	return append(dst, m.Data...), nil
}

// decodeBGP4MPMessageInto fills m from the record body. With borrow set,
// m.Data aliases b and is only valid as long as the caller keeps b
// intact; otherwise it is an owning copy. Every field of m is assigned on
// success, so scratch structs can be reused across calls.
func decodeBGP4MPMessageInto(m *BGP4MPMessage, ts time.Time, b []byte, as4, borrow bool) error {
	asLen := 2
	if as4 {
		asLen = 4
	}
	need := 2*asLen + 4
	if len(b) < need {
		return fmt.Errorf("%w: BGP4MP message header", ErrTruncated)
	}
	m.Timestamp = ts
	if as4 {
		m.PeerAS = bgp.ASN(binary.BigEndian.Uint32(b))
		m.LocalAS = bgp.ASN(binary.BigEndian.Uint32(b[4:]))
	} else {
		m.PeerAS = bgp.ASN(binary.BigEndian.Uint16(b))
		m.LocalAS = bgp.ASN(binary.BigEndian.Uint16(b[2:]))
	}
	b = b[2*asLen:]
	m.IfIndex = binary.BigEndian.Uint16(b)
	m.AFI = bgp.AFI(binary.BigEndian.Uint16(b[2:]))
	b = b[4:]
	peer, local, n, err := decodeAddrPair(b, m.AFI)
	if err != nil {
		return err
	}
	m.PeerIP, m.LocalIP = peer, local
	if borrow {
		m.Data = b[n:]
	} else {
		m.Data = append([]byte(nil), b[n:]...)
	}
	return nil
}

func (s *BGP4MPStateChange) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.PeerAS))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.LocalAS))
	dst = binary.BigEndian.AppendUint16(dst, s.IfIndex)
	dst = binary.BigEndian.AppendUint16(dst, uint16(s.AFI))
	dst, err := appendAddrPair(dst, s.AFI, s.PeerIP, s.LocalIP)
	if err != nil {
		return dst, err
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(s.OldState))
	dst = binary.BigEndian.AppendUint16(dst, uint16(s.NewState))
	return dst, nil
}

// decodeBGP4MPStateChangeInto fills s from the record body. State-change
// records carry no byte slices, so a decoded record never aliases b;
// every field is assigned on success, allowing scratch reuse.
func decodeBGP4MPStateChangeInto(s *BGP4MPStateChange, ts time.Time, b []byte, as4 bool) error {
	asLen := 2
	if as4 {
		asLen = 4
	}
	if len(b) < 2*asLen+4 {
		return fmt.Errorf("%w: BGP4MP state change header", ErrTruncated)
	}
	s.Timestamp = ts
	if as4 {
		s.PeerAS = bgp.ASN(binary.BigEndian.Uint32(b))
		s.LocalAS = bgp.ASN(binary.BigEndian.Uint32(b[4:]))
	} else {
		s.PeerAS = bgp.ASN(binary.BigEndian.Uint16(b))
		s.LocalAS = bgp.ASN(binary.BigEndian.Uint16(b[2:]))
	}
	b = b[2*asLen:]
	s.IfIndex = binary.BigEndian.Uint16(b)
	s.AFI = bgp.AFI(binary.BigEndian.Uint16(b[2:]))
	b = b[4:]
	peer, local, n, err := decodeAddrPair(b, s.AFI)
	if err != nil {
		return err
	}
	s.PeerIP, s.LocalIP = peer, local
	b = b[n:]
	if len(b) < 4 {
		return fmt.Errorf("%w: state change states", ErrTruncated)
	}
	s.OldState = SessionState(binary.BigEndian.Uint16(b))
	s.NewState = SessionState(binary.BigEndian.Uint16(b[2:]))
	return nil
}
