package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"zombiescope/internal/bgp"
)

// Reader decodes MRT records sequentially from an io.Reader. It returns
// io.EOF after the last record. Records of types this package does not
// model are skipped transparently.
type Reader struct {
	r      io.Reader
	header [HeaderLen]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next returns the next decoded record, or io.EOF at end of input.
func (rd *Reader) Next() (Record, error) {
	for {
		rec, err := rd.next()
		if err != nil {
			return nil, err
		}
		if rec != nil {
			return rec, nil
		}
		// Unsupported record: skip and continue.
	}
}

func (rd *Reader) next() (Record, error) {
	if _, err := io.ReadFull(rd.r, rd.header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: mid-header", ErrTruncated)
		}
		return nil, err
	}
	ts, typ, subtype, length := ParseHeader(rd.header)
	if length > MaxRecordLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooBig, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	return DecodeRecord(ts, typ, subtype, body)
}

// ParseHeader splits an MRT common header into its fields.
func ParseHeader(h [HeaderLen]byte) (ts time.Time, typ, subtype uint16, length uint32) {
	ts = time.Unix(int64(binary.BigEndian.Uint32(h[0:])), 0).UTC()
	typ = binary.BigEndian.Uint16(h[4:])
	subtype = binary.BigEndian.Uint16(h[6:])
	length = binary.BigEndian.Uint32(h[8:])
	return ts, typ, subtype, length
}

// DecodeRecord decodes a single MRT record body given its header fields.
// Record types this package does not model decode to (nil, nil).
func DecodeRecord(ts time.Time, typ, subtype uint16, body []byte) (Record, error) {
	switch typ {
	case TypeBGP4MP:
		switch subtype {
		case SubtypeMessage:
			return decodeBGP4MPMessage(ts, body, false)
		case SubtypeMessageAS4:
			return decodeBGP4MPMessage(ts, body, true)
		case SubtypeStateChange:
			return decodeBGP4MPStateChange(ts, body, false)
		case SubtypeStateChangeAS4:
			return decodeBGP4MPStateChange(ts, body, true)
		}
	case TypeTableDumpV2:
		switch subtype {
		case SubtypePeerIndexTable:
			return decodePeerIndexTable(ts, body)
		case SubtypeRIBIPv4Unicast:
			return decodeRIB(ts, body, bgp.AFIIPv4)
		case SubtypeRIBIPv6Unicast:
			return decodeRIB(ts, body, bgp.AFIIPv6)
		}
	}
	return nil, nil // unsupported; caller loop skips
}

// ReadAll decodes every record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
