package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Reader decodes MRT records sequentially from an io.Reader. It returns
// io.EOF after the last record. Records of types this package does not
// model are skipped transparently.
//
// Record bodies are read into a pooled buffer whose capacity is reused
// across records; call Release when done with the Reader to hand the
// buffer back to the pool. Buffer reuse is invisible in the default mode
// (every decoded record owns its memory); SetBorrow trades that guarantee
// for zero-copy decoding.
type Reader struct {
	r      io.Reader
	header [HeaderLen]byte
	body   []byte // pooled record-body buffer, cap-reused across records
	dec    Decoder
	stats  PoolStats // local counters, flushed to the package by Release
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// SetBorrow switches the Reader into borrowed-slice decode mode: BGP4MP
// message and state-change records are scratch structs reused by the next
// Next call, and BGP4MPMessage.Data aliases the Reader's pooled body
// buffer. Callers that consume each record before the next Next (and
// before Release) save the per-record body copy; all other callers should
// leave the default mode on. TABLE_DUMP_V2 records stay safe to retain.
func (rd *Reader) SetBorrow(on bool) { rd.dec.Borrow = on }

// Release returns the Reader's pooled body buffer and flushes its pool
// counters to the package-wide PoolStats. The Reader remains usable (it
// will draw a fresh buffer), but records decoded in borrow mode must not
// be touched after Release.
func (rd *Reader) Release() {
	if rd.body != nil {
		b := rd.body
		rd.body = nil
		bodyPool.Put(&b)
	}
	flushPoolStats(&rd.stats)
}

// bodyBuf returns the pooled body buffer resized to n bytes, growing it
// when a record exceeds the current capacity.
func (rd *Reader) bodyBuf(n int) []byte {
	if rd.body == nil {
		rd.body = *bodyPool.Get().(*[]byte)
		rd.stats.Gets++
	}
	if cap(rd.body) < n {
		// Grow past the record so nearby records of similar size reuse.
		c := 2 * cap(rd.body)
		if c < n {
			c = n
		}
		rd.body = make([]byte, c)
		rd.stats.Grows++
	} else {
		rd.stats.Reuses++
	}
	rd.stats.Bytes += uint64(n)
	return rd.body[:cap(rd.body)][:n]
}

// Next returns the next decoded record, or io.EOF at end of input.
func (rd *Reader) Next() (Record, error) {
	for {
		rec, err := rd.next()
		if err != nil {
			return nil, err
		}
		if rec != nil {
			return rec, nil
		}
		// Unsupported record: skip and continue.
	}
}

func (rd *Reader) next() (Record, error) {
	if _, err := io.ReadFull(rd.r, rd.header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: mid-header", ErrTruncated)
		}
		return nil, err
	}
	ts, typ, subtype, length := ParseHeader(rd.header)
	if length > MaxRecordLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooBig, length)
	}
	body := rd.bodyBuf(int(length))
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	return rd.dec.Decode(ts, typ, subtype, body)
}

// ParseHeader splits an MRT common header into its fields.
func ParseHeader(h [HeaderLen]byte) (ts time.Time, typ, subtype uint16, length uint32) {
	ts = time.Unix(int64(binary.BigEndian.Uint32(h[0:])), 0).UTC()
	typ = binary.BigEndian.Uint16(h[4:])
	subtype = binary.BigEndian.Uint16(h[6:])
	length = binary.BigEndian.Uint32(h[8:])
	return ts, typ, subtype, length
}

// DecodeRecord decodes a single MRT record body given its header fields.
// Record types this package does not model decode to (nil, nil). Every
// decoded record owns its memory; use a Decoder with Borrow for the
// zero-copy mode.
func DecodeRecord(ts time.Time, typ, subtype uint16, body []byte) (Record, error) {
	var d Decoder
	return d.Decode(ts, typ, subtype, body)
}

// sizedReaderAt is what ReadAll needs to count records up front without
// disturbing the read cursor (bytes.Reader, io.SectionReader, ...).
type sizedReaderAt interface {
	io.ReaderAt
	Size() int64
}

// countRecords walks the MRT common headers of r via ReadAt and returns
// how many well-framed records the stream holds. The walk stops at the
// first framing irregularity — the count is only a capacity hint, the
// decode loop re-validates everything.
func countRecords(r sizedReaderAt, size int64) int {
	var h [HeaderLen]byte
	n := 0
	off := int64(0)
	for off+HeaderLen <= size {
		if _, err := r.ReadAt(h[:], off); err != nil {
			break
		}
		length := binary.BigEndian.Uint32(h[8:])
		if length > MaxRecordLen || off+HeaderLen+int64(length) > size {
			break
		}
		off += HeaderLen + int64(length)
		n++
	}
	return n
}

// ReadAll decodes every record from r. When r can report its size the
// result slice is pre-sized — exactly, via a header-walk first pass, when
// r also supports ReadAt — so the append loop never reallocates; the
// Reader's header and body scratch are reused across records either way.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	defer rd.Release()
	var out []Record
	if sr, ok := r.(sizedReaderAt); ok {
		if n := countRecords(sr, sr.Size()); n > 0 {
			out = make([]Record, 0, n)
		}
	} else if lr, ok := r.(interface{ Len() int }); ok {
		// Sized hint only: a record is at least HeaderLen bytes, typical
		// update records run tens of bytes, so size/64 seeds the geometric
		// growth close to the final count without overcommitting.
		if c := lr.Len() / 64; c > 0 {
			out = make([]Record, 0, c)
		}
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
