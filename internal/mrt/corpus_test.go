package mrt

import (
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

// Regenerate the committed seed corpus with:
//
//	go test ./internal/mrt -run TestFuzzSeedCorpus -update-corpus
var updateCorpus = flag.Bool("update-corpus", false, "rewrite the seed corpus under testdata/fuzz/FuzzReader")

const corpusDir = "testdata/fuzz/FuzzReader"

// corpusSeeds builds the committed FuzzReader seeds: well-formed streams of
// every record shape the reader models, so mutation starts from deep inside
// the format rather than rediscovering framing from zeros.
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	ts := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	write := func(recs ...Record) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	stateChanges := write(
		&BGP4MPStateChange{Timestamp: ts, PeerAS: 25091, LocalAS: 12654, AFI: bgp.AFIIPv4,
			PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
			OldState: StateIdle, NewState: StateEstablished},
		&BGP4MPStateChange{Timestamp: ts.Add(time.Hour), PeerAS: 25091, LocalAS: 12654, AFI: bgp.AFIIPv6,
			PeerIP: netip.MustParseAddr("2001:db8::1"), LocalIP: netip.MustParseAddr("2001:db8::2"),
			OldState: StateEstablished, NewState: StateIdle},
	)

	u4 := &bgp.Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("93.175.147.0/24")},
		NLRI:      []netip.Prefix{netip.MustParsePrefix("93.175.146.0/24")},
		Attrs: bgp.PathAttributes{
			HasOrigin:  true,
			ASPath:     bgp.NewASPath(25091, 8298, 210312),
			Aggregator: &bgp.Aggregator{ASN: 210312, Addr: netip.MustParseAddr("10.19.29.192")},
		},
	}
	wire4, err := u4.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	u6 := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			ASPath:    bgp.NewASPath(25091, 8298, 210312),
			MPReach: &bgp.MPReachNLRI{
				AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1200::/48")},
			},
		},
	}
	wire6, err := u6.AppendWireFormat(nil)
	if err != nil {
		t.Fatal(err)
	}
	messages := write(
		&BGP4MPMessage{Timestamp: ts, PeerAS: 25091, LocalAS: 12654, AFI: bgp.AFIIPv4,
			PeerIP: netip.MustParseAddr("192.0.2.1"), LocalIP: netip.MustParseAddr("192.0.2.2"),
			Data: wire4},
		&BGP4MPMessage{Timestamp: ts.Add(time.Minute), PeerAS: 25091, LocalAS: 12654, AFI: bgp.AFIIPv6,
			PeerIP: netip.MustParseAddr("2001:db8::1"), LocalIP: netip.MustParseAddr("2001:db8::2"),
			Data: wire6},
	)

	table := &PeerIndexTable{
		Timestamp:   ts,
		CollectorID: netip.MustParseAddr("193.0.4.28"),
		ViewName:    "rrc00",
		Peers: []PeerEntry{
			{BGPID: netip.MustParseAddr("192.0.2.1"), Addr: netip.MustParseAddr("192.0.2.1"), AS: 25091},
			{BGPID: netip.MustParseAddr("192.0.2.9"), Addr: netip.MustParseAddr("2001:db8::9"), AS: 8298},
		},
	}
	tableDump := write(
		table,
		&RIB{Timestamp: ts, Sequence: 0, Prefix: netip.MustParsePrefix("93.175.146.0/24"),
			Entries: []RIBEntry{{PeerIndex: 0, OriginatedTime: ts.Add(-time.Hour),
				Attrs: bgp.PathAttributes{HasOrigin: true, ASPath: bgp.NewASPath(25091, 210312)}}}},
		&RIB{Timestamp: ts, Sequence: 1, Prefix: netip.MustParsePrefix("2a0d:3dc1:1200::/48"),
			Entries: []RIBEntry{{PeerIndex: 1, OriginatedTime: ts.Add(-2 * time.Hour),
				Attrs: bgp.PathAttributes{HasOrigin: true, ASPath: bgp.NewASPath(8298, 210312)}}}},
	)

	// The writer only emits the AS4 subtypes; hand-frame a legacy 2-byte-AS
	// state change so the old code path has a seed too.
	var legacy []byte
	body := binary.BigEndian.AppendUint16(nil, 25091) // peer AS
	body = binary.BigEndian.AppendUint16(body, 12654) // local AS
	body = binary.BigEndian.AppendUint16(body, 0)     // ifindex
	body = binary.BigEndian.AppendUint16(body, uint16(bgp.AFIIPv4))
	body = append(body, 192, 0, 2, 1, 192, 0, 2, 2) // peer, local
	body = binary.BigEndian.AppendUint16(body, uint16(StateActive))
	body = binary.BigEndian.AppendUint16(body, uint16(StateEstablished))
	legacy = binary.BigEndian.AppendUint32(legacy, uint32(ts.Unix()))
	legacy = binary.BigEndian.AppendUint16(legacy, TypeBGP4MP)
	legacy = binary.BigEndian.AppendUint16(legacy, SubtypeStateChange)
	legacy = binary.BigEndian.AppendUint32(legacy, uint32(len(body)))
	legacy = append(legacy, body...)

	// An unsupported record type between two supported ones: the reader
	// must skip it, and mutations around the skip path are worth seeding.
	var mixed []byte
	mixed = append(mixed, stateChanges...)
	mixed = binary.BigEndian.AppendUint32(mixed, uint32(ts.Unix()))
	mixed = binary.BigEndian.AppendUint16(mixed, 32) // TABLE_DUMP (v1): not modeled
	mixed = binary.BigEndian.AppendUint16(mixed, 1)
	mixed = binary.BigEndian.AppendUint32(mixed, 4)
	mixed = append(mixed, 0xde, 0xad, 0xbe, 0xef)
	mixed = append(mixed, messages...)

	return map[string][]byte{
		"seed-statechange-as4":   stateChanges,
		"seed-statechange-as2":   legacy,
		"seed-bgp4mp-messages":   messages,
		"seed-tabledumpv2":       tableDump,
		"seed-mixed-unsupported": mixed,
	}
}

// corpusEntry renders data in the `go test fuzz v1` single-[]byte format
// FuzzReader consumes.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// parseCorpusEntry is the inverse, for validating committed files.
func parseCorpusEntry(t *testing.T, raw []byte) []byte {
	t.Helper()
	lines := strings.SplitN(string(raw), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("bad corpus header %q", lines[0])
	}
	body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(lines[1]), "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("bad corpus literal: %v", err)
	}
	return []byte(s)
}

// TestFuzzSeedCorpus keeps the committed seed corpus in sync with
// corpusSeeds and proves every seed decodes end-to-end: a corpus of streams
// the reader cannot even parse would seed the fuzzer with noise.
func TestFuzzSeedCorpus(t *testing.T) {
	seeds := corpusSeeds(t)
	if *updateCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			if err := os.WriteFile(filepath.Join(corpusDir, name), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range seeds {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatalf("%v (run with -update-corpus to regenerate)", err)
			}
			if got := parseCorpusEntry(t, raw); !bytes.Equal(got, data) {
				t.Fatal("committed corpus entry diverges from corpusSeeds (run with -update-corpus)")
			}
			rd := NewReader(bytes.NewReader(data))
			records := 0
			for {
				rec, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("seed does not decode: %v", err)
				}
				if rec == nil {
					t.Fatal("Next returned nil record without error")
				}
				records++
			}
			if records == 0 {
				t.Fatal("seed decoded zero records")
			}
		})
	}
}
