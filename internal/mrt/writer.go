package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Writer encodes MRT records to an io.Writer. It always emits the
// four-octet-AS BGP4MP subtypes, as modern collectors do.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (wr *Writer) writeRecord(rec Record, typ, subtype uint16, body []byte) error {
	ts := rec.RecordTime().Unix()
	if ts < 0 {
		return ErrBadTimestamp
	}
	wr.buf = wr.buf[:0]
	wr.buf = binary.BigEndian.AppendUint32(wr.buf, uint32(ts))
	wr.buf = binary.BigEndian.AppendUint16(wr.buf, typ)
	wr.buf = binary.BigEndian.AppendUint16(wr.buf, subtype)
	wr.buf = binary.BigEndian.AppendUint32(wr.buf, uint32(len(body)))
	wr.buf = append(wr.buf, body...)
	_, err := wr.w.Write(wr.buf)
	return err
}

// Write encodes one record. The concrete type selects the MRT type and
// subtype.
func (wr *Writer) Write(rec Record) error {
	switch r := rec.(type) {
	case *BGP4MPMessage:
		body, err := r.appendBody(nil)
		if err != nil {
			return err
		}
		return wr.writeRecord(r, TypeBGP4MP, SubtypeMessageAS4, body)
	case *BGP4MPStateChange:
		body, err := r.appendBody(nil)
		if err != nil {
			return err
		}
		return wr.writeRecord(r, TypeBGP4MP, SubtypeStateChangeAS4, body)
	case *PeerIndexTable:
		body, err := r.appendBody(nil)
		if err != nil {
			return err
		}
		return wr.writeRecord(r, TypeTableDumpV2, SubtypePeerIndexTable, body)
	case *RIB:
		body, err := r.appendBody(nil)
		if err != nil {
			return err
		}
		subtype := SubtypeRIBIPv4Unicast
		if !r.Prefix.Addr().Is4() {
			subtype = SubtypeRIBIPv6Unicast
		}
		return wr.writeRecord(r, TypeTableDumpV2, subtype, body)
	default:
		return fmt.Errorf("%w: %T", ErrUnsupported, rec)
	}
}

// WriteAll encodes all records in order.
func (wr *Writer) WriteAll(recs []Record) error {
	for _, r := range recs {
		if err := wr.Write(r); err != nil {
			return err
		}
	}
	return nil
}
