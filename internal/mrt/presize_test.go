package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"zombiescope/internal/bgp"
)

func makeStream(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	for i := 0; i < n; i++ {
		u := &bgp.Update{NLRI: []netip.Prefix{netip.MustParsePrefix("93.175.146.0/24")}}
		u.Attrs.ASPath = bgp.NewASPath(64500, 3333, 12654)
		data, err := u.AppendWireFormat(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := wr.Write(&BGP4MPMessage{
			Timestamp: time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
			PeerAS:    64500,
			LocalAS:   12654,
			AFI:       bgp.AFIIPv4,
			PeerIP:    netip.AddrFrom4([4]byte{192, 0, 2, 1}),
			LocalIP:   netip.AddrFrom4([4]byte{192, 0, 2, 2}),
			Data:      data,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestReadAllPresizesExactly(t *testing.T) {
	const n = 500
	data := makeStream(t, n)
	recs, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("decoded %d records, want %d", len(recs), n)
	}
	// The header-walk first pass counts records exactly, so the append
	// loop fills the slice without a single regrow.
	if cap(recs) != n {
		t.Errorf("result capacity %d, want exactly %d (presize missed)", cap(recs), n)
	}
}

func TestCountRecordsStopsAtBadFraming(t *testing.T) {
	data := makeStream(t, 10)
	trunc := data[:len(data)-3]
	r := bytes.NewReader(trunc)
	if got := countRecords(r, r.Size()); got != 9 {
		t.Errorf("countRecords on truncated stream = %d, want 9", got)
	}
	recs, err := ReadAll(bytes.NewReader(trunc))
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if len(recs) != 9 {
		t.Errorf("decoded %d records before the error, want 9", len(recs))
	}
}

// plainReader hides ReadAt/Len so ReadAll takes the unsized path.
type plainReader struct{ r io.Reader }

func (p plainReader) Read(b []byte) (int, error) { return p.r.Read(b) }

func TestReadAllUnsizedReaderStillWorks(t *testing.T) {
	const n = 100
	data := makeStream(t, n)
	recs, err := ReadAll(plainReader{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("decoded %d records, want %d", len(recs), n)
	}
}
