// Package mrt implements the MRT routing information export format
// (RFC 6396) as used by the RIPE RIS and RouteViews route collectors:
// BGP4MP message and state-change records for update files, and
// TABLE_DUMP_V2 records (peer index table and per-prefix RIB entries) for
// RIB snapshot ("bview") files.
//
// Only the four-octet-AS record variants are emitted by the Writer, which
// matches modern collector output; the Reader additionally accepts the
// two-octet legacy subtypes.
package mrt

import (
	"errors"
	"fmt"
	"time"
)

// Record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeStateChange    uint16 = 0
	SubtypeMessage        uint16 = 1
	SubtypeMessageAS4     uint16 = 4
	SubtypeStateChangeAS4 uint16 = 5
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// HeaderLen is the length of the MRT common header.
const HeaderLen = 12

// MaxRecordLen bounds the record body length the Reader will accept,
// protecting against corrupted length fields.
const MaxRecordLen = 1 << 20

// SessionState is a BGP FSM state as carried in state-change records
// (RFC 6396 §4.4.1 citing RFC 4271 §8.2.2).
type SessionState uint16

// BGP finite-state-machine states.
const (
	StateIdle        SessionState = 1
	StateConnect     SessionState = 2
	StateActive      SessionState = 3
	StateOpenSent    SessionState = 4
	StateOpenConfirm SessionState = 5
	StateEstablished SessionState = 6
)

func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateActive:
		return "Active"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", uint16(s))
	}
}

// Record is any decoded MRT record.
type Record interface {
	// RecordTime returns the MRT header timestamp.
	RecordTime() time.Time
}

// Sentinel errors for malformed MRT data.
var (
	ErrTruncated     = errors.New("mrt: truncated record")
	ErrBadRecord     = errors.New("mrt: malformed record")
	ErrUnsupported   = errors.New("mrt: unsupported record type")
	ErrRecordTooBig  = errors.New("mrt: record length exceeds limit")
	ErrNoPeerIndex   = errors.New("mrt: RIB record before peer index table")
	ErrBadPeerIndex  = errors.New("mrt: RIB entry references unknown peer index")
	ErrBadViewName   = errors.New("mrt: malformed view name")
	ErrNotSeekable   = errors.New("mrt: reader requires sequential input")
	ErrWriterClosed  = errors.New("mrt: writer is closed")
	ErrBadTimestamp  = errors.New("mrt: timestamp before unix epoch")
	ErrEmptyRIBEntry = errors.New("mrt: RIB record with no entries")
)
