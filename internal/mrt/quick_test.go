package mrt

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"zombiescope/internal/bgp"
)

// TestReaderNeverPanics: arbitrary bytes fed to the reader must produce
// records, errors, or EOF — never a panic.
func TestReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("reader panicked on %x: %v", data, r)
			}
		}()
		_, _ = ReadAll(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// TestReaderValidHeaderRandomBody: a well-formed MRT header followed by
// random body bytes of the declared length must never panic either.
func TestReaderValidHeaderRandomBody(t *testing.T) {
	subtypes := []uint16{SubtypeMessage, SubtypeMessageAS4, SubtypeStateChange, SubtypeStateChangeAS4}
	f := func(body []byte, pick uint8) bool {
		hdr := make([]byte, HeaderLen)
		hdr[4], hdr[5] = 0, byte(TypeBGP4MP)
		st := subtypes[int(pick)%len(subtypes)]
		hdr[6], hdr[7] = byte(st>>8), byte(st)
		hdr[8] = byte(len(body) >> 24)
		hdr[9] = byte(len(body) >> 16)
		hdr[10] = byte(len(body) >> 8)
		hdr[11] = byte(len(body))
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panicked on subtype %d body %x: %v", st, body, r)
			}
		}()
		_, _ = ReadAll(bytes.NewReader(append(hdr, body...)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestStateChangeQuickRoundTrip: random state-change records round-trip.
func TestStateChangeQuickRoundTrip(t *testing.T) {
	f := func(peerAS, localAS uint32, ifIdx uint16, v6 bool, oldS, newS uint8, ts uint32) bool {
		sc := &BGP4MPStateChange{
			Timestamp: time.Unix(int64(ts), 0).UTC(),
			PeerAS:    bgp.ASN(peerAS),
			LocalAS:   bgp.ASN(localAS),
			IfIndex:   ifIdx,
			OldState:  SessionState(oldS%6) + 1,
			NewState:  SessionState(newS%6) + 1,
		}
		if v6 {
			sc.AFI = bgp.AFIIPv6
			sc.PeerIP = netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(peerAS)})
			sc.LocalIP = netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(localAS) | 1})
		} else {
			sc.AFI = bgp.AFIIPv4
			sc.PeerIP = netip.AddrFrom4([4]byte{192, 0, 2, byte(peerAS)})
			sc.LocalIP = netip.AddrFrom4([4]byte{192, 0, 2, byte(localAS) | 1})
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(sc); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != 1 {
			return false
		}
		got, ok := recs[0].(*BGP4MPStateChange)
		if !ok {
			return false
		}
		return got.PeerAS == sc.PeerAS && got.LocalAS == sc.LocalAS &&
			got.IfIndex == sc.IfIndex && got.PeerIP == sc.PeerIP &&
			got.LocalIP == sc.LocalIP && got.OldState == sc.OldState &&
			got.NewState == sc.NewState && got.Timestamp.Equal(sc.Timestamp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// TestMessageQuickRoundTrip: random BGP4MP message records (with a real
// UPDATE inside) round-trip through the writer and reader.
func TestMessageQuickRoundTrip(t *testing.T) {
	f := func(peerAS uint32, group uint16, ts uint32) bool {
		prefix, err := netip.AddrFrom16([16]byte{0x2a, 0x0d, 0x3d, 0xc1, byte(group >> 8), byte(group)}).Prefix(48)
		if err != nil {
			return false
		}
		u := &bgp.Update{
			Attrs: bgp.PathAttributes{
				HasOrigin: true,
				ASPath:    bgp.NewASPath(bgp.ASN(peerAS), 8298, 210312),
				MPReach: &bgp.MPReachNLRI{
					AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
					NextHop: netip.MustParseAddr("2001:db8::1"),
					NLRI:    []netip.Prefix{prefix},
				},
			},
		}
		wire, err := u.AppendWireFormat(nil)
		if err != nil {
			return false
		}
		msg := &BGP4MPMessage{
			Timestamp: time.Unix(int64(ts), 0).UTC(),
			PeerAS:    bgp.ASN(peerAS),
			LocalAS:   12654,
			AFI:       bgp.AFIIPv6,
			PeerIP:    netip.AddrFrom16([16]byte{0x20, 0x01, 15: 9}),
			LocalIP:   netip.AddrFrom16([16]byte{0x20, 0x01, 15: 10}),
			Data:      wire,
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(msg); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != 1 {
			return false
		}
		got, ok := recs[0].(*BGP4MPMessage)
		if !ok || got.PeerAS != msg.PeerAS {
			return false
		}
		gu, err := got.Update()
		if err != nil {
			return false
		}
		ann := gu.Announced()
		return len(ann) == 1 && ann[0] == prefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestWriterRejectsUnknownRecord(t *testing.T) {
	var buf bytes.Buffer
	type fake struct{ Record }
	err := NewWriter(&buf).Write(fake{})
	if err == nil {
		t.Error("unknown record type accepted")
	}
}
