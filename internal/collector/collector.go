// Package collector models a RIPE RIS-like route collector fleet. Each
// collector maintains BGP sessions with volunteer peer ASes, records every
// UPDATE and session state change as MRT BGP4MP records (the "raw data"
// the paper's methodology insists on), and periodically snapshots every
// peer's routes as TABLE_DUMP_V2 RIB records (the 8-hourly dumps the paper
// uses for lifespan analysis).
//
// The fleet implements netsim.Sink, so it can be attached directly to a
// simulation; the archives it produces are consumed by the zombie
// detector through the mrt package, byte-for-byte like real collector
// output.
package collector

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"time"

	"zombiescope/internal/bgp"
	"zombiescope/internal/mrt"
	"zombiescope/internal/netsim"
	"zombiescope/internal/obs"
)

// LocalAS is the AS number collectors use on their side of peering
// sessions (RIPE RIS uses AS12654).
const LocalAS bgp.ASN = 12654

type sessionKey struct {
	peerAS bgp.ASN
	peerIP netip.Addr
}

type ribRoute struct {
	attrs     netsim.RouteAttrs
	learnedAt time.Time
}

// Collector is one route collector (e.g. "rrc21").
type Collector struct {
	Name string
	ID   netip.Addr // IPv4 collector BGP ID

	updates bytes.Buffer
	dumps   bytes.Buffer
	uw      *mrt.Writer
	dw      *mrt.Writer

	// Update-file rotation (see SetRotatePeriod).
	rotateEvery time.Duration
	curSegment  *segment
	segments    []segment

	sessions map[sessionKey]netsim.Session
	state    map[sessionKey]map[netip.Prefix]ribRoute

	tap Tap

	seq4, seq6 uint32
	records    int
	err        error

	// Cached registry children (see metrics.go).
	obsRecords   *obs.Counter
	obsSnapshots *obs.Counter
}

// Tap observes every update-stream record a collector writes, in write
// order, right after it is archived — the fan-out hook that lets records
// flow to the archives and a live feed at the same time. Implementations
// must not retain rec past the call.
type Tap func(collector string, rec mrt.Record)

// SetTap installs (or, with nil, removes) the record tap.
func (c *Collector) SetTap(t Tap) { c.tap = t }

func newCollector(name string) *Collector {
	c := &Collector{
		Name:         name,
		ID:           collectorID(name),
		sessions:     make(map[sessionKey]netsim.Session),
		state:        make(map[sessionKey]map[netip.Prefix]ribRoute),
		obsRecords:   recordsVec.With(name),
		obsSnapshots: snapshotsVec.With(name),
	}
	c.uw = mrt.NewWriter(&c.updates)
	c.dw = mrt.NewWriter(&c.dumps)
	return c
}

// collectorID derives a stable IPv4 router ID from the collector name,
// inside RIPE's 193.0.0.0/16 for flavor.
func collectorID(name string) netip.Addr {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	return netip.AddrFrom4([4]byte{193, 0, byte(v >> 8), byte(v)})
}

// localIP returns the collector-side session address for a family.
func (c *Collector) localIP(afi bgp.AFI) netip.Addr {
	if afi == bgp.AFIIPv4 {
		return c.ID
	}
	id := c.ID.As4()
	var a [16]byte
	a[0], a[1] = 0x20, 0x01
	a[2], a[3] = 0x06, 0x7c
	copy(a[4:8], id[:])
	a[15] = 1
	return netip.AddrFrom16(a)
}

// nextHopFor synthesizes a next hop of the prefix's family for a session.
func nextHopFor(sess netsim.Session, p netip.Prefix) netip.Addr {
	v6 := p.Addr().Is6()
	if v6 == sess.PeerIP.Is6() {
		return sess.PeerIP
	}
	if v6 {
		// IPv6 NLRI on an IPv4-addressed session: derive a v6 next hop
		// from the peer address.
		p4 := sess.PeerIP.As4()
		var a [16]byte
		a[0], a[1] = 0x20, 0x01
		a[2], a[3] = 0x0d, 0xb8
		copy(a[4:8], p4[:])
		a[15] = 0xfe
		return netip.AddrFrom16(a)
	}
	// IPv4 NLRI on an IPv6 session.
	p16 := sess.PeerIP.As16()
	return netip.AddrFrom4([4]byte{192, 0, 2, p16[15]})
}

func (c *Collector) fail(err error) {
	if c.err == nil && err != nil {
		c.err = fmt.Errorf("collector %s: %w", c.Name, err)
	}
}

// Err returns the first write/encode error, if any.
func (c *Collector) Err() error { return c.err }

// Records returns how many MRT records were written.
func (c *Collector) Records() int { return c.records }

// UpdatesData returns the raw MRT update archive — the concatenation of
// every rotated segment plus the in-progress one (a concatenation of MRT
// files is itself a valid MRT stream).
func (c *Collector) UpdatesData() []byte {
	if len(c.segments) == 0 && c.curSegment == nil {
		return c.updates.Bytes()
	}
	var out []byte
	for _, s := range c.segments {
		out = append(out, s.data...)
	}
	if c.curSegment != nil {
		out = append(out, c.curSegment.data...)
	}
	return append(out, c.updates.Bytes()...)
}

// DumpData returns the raw MRT RIB dump archive (all snapshots,
// concatenated; each begins with a PEER_INDEX_TABLE).
func (c *Collector) DumpData() []byte { return c.dumps.Bytes() }

func (c *Collector) session(sess netsim.Session) sessionKey {
	k := sessionKey{peerAS: sess.PeerAS, peerIP: sess.PeerIP}
	if _, ok := c.sessions[k]; !ok {
		c.sessions[k] = sess
	}
	return k
}

func buildUpdate(sess netsim.Session, announce bool, p netip.Prefix, attrs netsim.RouteAttrs) (*bgp.Update, error) {
	u := &bgp.Update{}
	if announce {
		u.Attrs = bgp.PathAttributes{
			HasOrigin:   true,
			Origin:      bgp.OriginIGP,
			ASPath:      attrs.Path,
			Aggregator:  attrs.Aggregator,
			Communities: attrs.Communities,
		}
		if p.Addr().Is4() {
			u.Attrs.NextHop = nextHopFor(sess, p)
			u.NLRI = []netip.Prefix{p}
		} else {
			u.Attrs.MPReach = &bgp.MPReachNLRI{
				AFI:     bgp.AFIIPv6,
				SAFI:    bgp.SAFIUnicast,
				NextHop: nextHopFor(sess, p),
				NLRI:    []netip.Prefix{p},
			}
		}
		return u, nil
	}
	if p.Addr().Is4() {
		u.Withdrawn = []netip.Prefix{p}
	} else {
		u.Attrs.MPUnreach = &bgp.MPUnreachNLRI{
			AFI:       bgp.AFIIPv6,
			SAFI:      bgp.SAFIUnicast,
			Withdrawn: []netip.Prefix{p},
		}
	}
	return u, nil
}

func (c *Collector) writeMessage(at time.Time, sess netsim.Session, u *bgp.Update) {
	c.rotateIfNeeded(at)
	data, err := u.AppendWireFormat(nil)
	if err != nil {
		c.fail(err)
		return
	}
	rec := &mrt.BGP4MPMessage{
		Timestamp: at,
		PeerAS:    sess.PeerAS,
		LocalAS:   LocalAS,
		AFI:       sess.AFI,
		PeerIP:    sess.PeerIP,
		LocalIP:   c.localIP(sess.AFI),
		Data:      data,
	}
	if err := c.uw.Write(rec); err != nil {
		c.fail(err)
		return
	}
	c.noteRecord()
	if c.tap != nil {
		c.tap(c.Name, rec)
	}
}

// PeerAnnounce records an announcement and updates the collector's view.
func (c *Collector) PeerAnnounce(at time.Time, sess netsim.Session, p netip.Prefix, attrs netsim.RouteAttrs) {
	k := c.session(sess)
	u, err := buildUpdate(sess, true, p, attrs)
	if err != nil {
		c.fail(err)
		return
	}
	c.writeMessage(at, sess, u)
	st := c.state[k]
	if st == nil {
		st = make(map[netip.Prefix]ribRoute)
		c.state[k] = st
	}
	st[p] = ribRoute{attrs: attrs, learnedAt: at}
}

// PeerWithdraw records a withdrawal and updates the collector's view.
func (c *Collector) PeerWithdraw(at time.Time, sess netsim.Session, p netip.Prefix) {
	k := c.session(sess)
	u, err := buildUpdate(sess, false, p, netsim.RouteAttrs{})
	if err != nil {
		c.fail(err)
		return
	}
	c.writeMessage(at, sess, u)
	delete(c.state[k], p)
}

// PeerState records a session transition; leaving Established flushes the
// collector's view of the session, as the real collectors do.
func (c *Collector) PeerState(at time.Time, sess netsim.Session, old, new mrt.SessionState) {
	c.rotateIfNeeded(at)
	k := c.session(sess)
	rec := &mrt.BGP4MPStateChange{
		Timestamp: at,
		PeerAS:    sess.PeerAS,
		LocalAS:   LocalAS,
		AFI:       sess.AFI,
		PeerIP:    sess.PeerIP,
		LocalIP:   c.localIP(sess.AFI),
		OldState:  old,
		NewState:  new,
	}
	if err := c.uw.Write(rec); err != nil {
		c.fail(err)
		return
	}
	c.noteRecord()
	if c.tap != nil {
		c.tap(c.Name, rec)
	}
	if rec.Down() {
		delete(c.state, k)
	}
}

func (c *Collector) sortedSessionKeys() []sessionKey {
	keys := make([]sessionKey, 0, len(c.sessions))
	for k := range c.sessions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].peerAS != keys[j].peerAS {
			return keys[i].peerAS < keys[j].peerAS
		}
		return keys[i].peerIP.Less(keys[j].peerIP)
	})
	return keys
}

// SnapshotRIB appends a TABLE_DUMP_V2 snapshot of the collector's current
// view to its dump archive: a peer index table followed by one RIB record
// per prefix present at any peer.
func (c *Collector) SnapshotRIB(at time.Time) {
	start := time.Now()
	defer c.noteSnapshot(start)
	keys := c.sortedSessionKeys()
	table := &mrt.PeerIndexTable{
		Timestamp:   at,
		CollectorID: c.ID,
		ViewName:    c.Name,
	}
	index := make(map[sessionKey]uint16, len(keys))
	for i, k := range keys {
		index[k] = uint16(i)
		table.Peers = append(table.Peers, mrt.PeerEntry{
			BGPID: peerBGPID(k),
			Addr:  k.peerIP,
			AS:    k.peerAS,
		})
	}
	if err := c.dw.Write(table); err != nil {
		c.fail(err)
		return
	}
	c.noteRecord()
	// Gather all prefixes present anywhere, sorted for determinism.
	prefixSet := make(map[netip.Prefix]bool)
	for _, st := range c.state {
		for p := range st {
			prefixSet[p] = true
		}
	}
	prefixes := make([]netip.Prefix, 0, len(prefixSet))
	for p := range prefixSet {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for _, p := range prefixes {
		rib := &mrt.RIB{Timestamp: at, Prefix: p}
		if p.Addr().Is4() {
			rib.Sequence = c.seq4
			c.seq4++
		} else {
			rib.Sequence = c.seq6
			c.seq6++
		}
		for _, k := range keys {
			rr, ok := c.state[k][p]
			if !ok {
				continue
			}
			entry := mrt.RIBEntry{
				PeerIndex:      index[k],
				OriginatedTime: rr.learnedAt,
				Attrs: bgp.PathAttributes{
					HasOrigin:   true,
					Origin:      bgp.OriginIGP,
					ASPath:      rr.attrs.Path,
					Aggregator:  rr.attrs.Aggregator,
					Communities: rr.attrs.Communities,
				},
			}
			sess := c.sessions[k]
			if p.Addr().Is4() {
				entry.Attrs.NextHop = nextHopFor(sess, p)
			} else {
				entry.Attrs.MPReach = &bgp.MPReachNLRI{
					AFI:     bgp.AFIIPv6,
					SAFI:    bgp.SAFIUnicast,
					NextHop: nextHopFor(sess, p),
					NLRI:    []netip.Prefix{p},
				}
			}
			rib.Entries = append(rib.Entries, entry)
		}
		if len(rib.Entries) == 0 {
			continue
		}
		if err := c.dw.Write(rib); err != nil {
			c.fail(err)
			return
		}
		c.noteRecord()
	}
}

// peerBGPID derives a stable IPv4 router ID for a peer session.
func peerBGPID(k sessionKey) netip.Addr {
	h := fnv.New32a()
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(k.peerAS))
	h.Write(b[:])
	a16 := k.peerIP.As16()
	h.Write(a16[:])
	v := h.Sum32()
	return netip.AddrFrom4([4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)})
}
