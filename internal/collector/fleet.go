package collector

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"zombiescope/internal/mrt"
	"zombiescope/internal/netsim"
)

// Fleet is a set of collectors addressed by name, implementing
// netsim.Sink by dispatching on the session's collector name.
type Fleet struct {
	collectors map[string]*Collector
	tap        Tap
}

// NewFleet returns an empty fleet; collectors are created on first use.
func NewFleet() *Fleet {
	return &Fleet{collectors: make(map[string]*Collector)}
}

// SetTap installs a record tap on every collector of the fleet, current
// and future, so each archived update-stream record also reaches the tap
// (e.g. a livefeed broker).
func (f *Fleet) SetTap(t Tap) {
	f.tap = t
	for _, c := range f.collectors {
		c.SetTap(t)
	}
}

// Collector returns (creating if needed) the named collector.
func (f *Fleet) Collector(name string) *Collector {
	c, ok := f.collectors[name]
	if !ok {
		c = newCollector(name)
		c.SetTap(f.tap)
		f.collectors[name] = c
	}
	return c
}

// Names returns the collector names in sorted order.
func (f *Fleet) Names() []string {
	names := make([]string, 0, len(f.collectors))
	for n := range f.collectors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PeerAnnounce implements netsim.Sink.
func (f *Fleet) PeerAnnounce(at time.Time, sess netsim.Session, p netip.Prefix, attrs netsim.RouteAttrs) {
	f.Collector(sess.Collector).PeerAnnounce(at, sess, p, attrs)
}

// PeerWithdraw implements netsim.Sink.
func (f *Fleet) PeerWithdraw(at time.Time, sess netsim.Session, p netip.Prefix) {
	f.Collector(sess.Collector).PeerWithdraw(at, sess, p)
}

// PeerState implements netsim.Sink.
func (f *Fleet) PeerState(at time.Time, sess netsim.Session, old, new mrt.SessionState) {
	f.Collector(sess.Collector).PeerState(at, sess, old, new)
}

// SnapshotRIBs appends a RIB snapshot at the given time to every
// collector's dump archive.
func (f *Fleet) SnapshotRIBs(at time.Time) {
	for _, name := range f.Names() {
		f.collectors[name].SnapshotRIB(at)
	}
}

// Err returns the first error any collector hit.
func (f *Fleet) Err() error {
	for _, name := range f.Names() {
		if err := f.collectors[name].Err(); err != nil {
			return err
		}
	}
	return nil
}

// Records returns the total MRT records written across the fleet.
func (f *Fleet) Records() int {
	n := 0
	for _, c := range f.collectors {
		n += c.Records()
	}
	return n
}

// UpdatesData returns every collector's update archive, keyed by name.
func (f *Fleet) UpdatesData() map[string][]byte {
	out := make(map[string][]byte, len(f.collectors))
	for name, c := range f.collectors {
		out[name] = c.UpdatesData()
	}
	return out
}

// DumpData returns every collector's RIB dump archive, keyed by name.
func (f *Fleet) DumpData() map[string][]byte {
	out := make(map[string][]byte, len(f.collectors))
	for name, c := range f.collectors {
		out[name] = c.DumpData()
	}
	return out
}

// WriteArchive writes the fleet's archives to dir using RIS-like naming:
// <dir>/<collector>/updates.mrt and <dir>/<collector>/bview.mrt.
func (f *Fleet) WriteArchive(dir string) error {
	for _, name := range f.Names() {
		c := f.collectors[name]
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("collector: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "updates.mrt"), c.UpdatesData(), 0o644); err != nil {
			return fmt.Errorf("collector: %w", err)
		}
		if err := os.WriteFile(filepath.Join(sub, "bview.mrt"), c.DumpData(), 0o644); err != nil {
			return fmt.Errorf("collector: %w", err)
		}
	}
	return nil
}
