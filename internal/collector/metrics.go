package collector

import (
	"time"

	"zombiescope/internal/obs"
)

// The fleet's instruments live on a package-level registry: collectors are
// constructed in many places (simulations, tests, zombied's feed builder)
// and a scrape wants them all as one target. Per-collector children are
// cached on the Collector at construction, so the hot write path never
// takes the registry's family lock.
var (
	registry = obs.NewRegistry()

	recordsVec = registry.CounterVec("collector_records_total",
		"MRT records archived, per collector (updates and RIB dumps).",
		"collector")
	snapshotsVec = registry.CounterVec("collector_snapshots_total",
		"RIB snapshots taken, per collector.",
		"collector")
	snapshotSeconds = registry.Histogram("collector_snapshot_seconds",
		"Wall time of one RIB snapshot across all peers.", obs.DefBuckets)
)

// Registry exposes the fleet's instruments for Prometheus exposition
// alongside other subsystems (zombied unions it into /metrics).
func Registry() *obs.Registry { return registry }

// noteRecord accounts one archived MRT record.
func (c *Collector) noteRecord() {
	c.records++
	c.obsRecords.Inc()
}

// noteSnapshot accounts one completed RIB snapshot.
func (c *Collector) noteSnapshot(start time.Time) {
	c.obsSnapshots.Inc()
	snapshotSeconds.Observe(time.Since(start).Seconds())
}
