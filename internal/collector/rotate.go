package collector

import (
	"fmt"
	"time"
)

// segment is one rotated update file, named like the RIS archives
// (updates.YYYYMMDD.HHMM.mrt).
type segment struct {
	name  string
	start time.Time
	data  []byte
}

// SetRotatePeriod makes the collector rotate its update archive into
// separate segments (files) of the given duration, mirroring RIPE RIS's
// 5-minute (modern) or 15-minute (historical) update files. Call before
// feeding records; 0 disables rotation (a single segment).
func (c *Collector) SetRotatePeriod(d time.Duration) {
	c.rotateEvery = d
}

// rotateIfNeeded closes the current segment if the record timestamp falls
// outside it. Records must arrive in non-decreasing time order, which the
// simulator guarantees.
func (c *Collector) rotateIfNeeded(at time.Time) {
	if c.rotateEvery <= 0 {
		return
	}
	segStart := at.Truncate(c.rotateEvery)
	if c.curSegment != nil && segStart.Equal(c.curSegment.start) {
		return
	}
	c.closeSegment()
	c.curSegment = &segment{
		name:  fmt.Sprintf("updates.%s.mrt", segStart.Format("20060102.1504")),
		start: segStart,
	}
}

func (c *Collector) closeSegment() {
	if c.curSegment == nil {
		return
	}
	c.curSegment.data = append(c.curSegment.data, c.updates.Bytes()...)
	c.updates.Reset()
	if len(c.curSegment.data) > 0 {
		c.segments = append(c.segments, *c.curSegment)
	}
	c.curSegment = nil
}

// Segments returns the rotated update files written so far (flushing the
// in-progress one), keyed by file name in chronological order. Without
// rotation it returns a single "updates.mrt" entry.
func (c *Collector) Segments() []ArchiveFile {
	c.closeSegment()
	var out []ArchiveFile
	for _, s := range c.segments {
		out = append(out, ArchiveFile{Name: s.name, Data: s.data})
	}
	if rest := c.updates.Bytes(); len(rest) > 0 {
		out = append(out, ArchiveFile{Name: "updates.mrt", Data: append([]byte(nil), rest...)})
	}
	return out
}

// ArchiveFile is one file of a collector archive.
type ArchiveFile struct {
	Name string
	Data []byte
}
