package collector

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zombiescope/internal/bgp"
	"zombiescope/internal/mrt"
	"zombiescope/internal/netsim"
)

var (
	at0   = time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	pfx6  = netip.MustParsePrefix("2a0d:3dc1:1200::/48")
	pfx4  = netip.MustParsePrefix("93.175.146.0/24")
	attrs = netsim.RouteAttrs{
		Path:       bgp.NewASPath(200, 11, 1, 10, 100),
		Aggregator: &bgp.Aggregator{ASN: 100, Addr: netip.MustParseAddr("10.1.2.3")},
	}
)

func v6Session() netsim.Session {
	return netsim.Session{
		Collector: "rrc25",
		PeerAS:    200,
		PeerIP:    netip.MustParseAddr("2001:db8:feed::1"),
		AFI:       bgp.AFIIPv6,
	}
}

func v4SessionCarryingV6() netsim.Session {
	return netsim.Session{
		Collector: "rrc25",
		PeerAS:    211509,
		PeerIP:    netip.MustParseAddr("176.119.234.201"),
		AFI:       bgp.AFIIPv4,
	}
}

func TestUpdateArchiveRoundTrip(t *testing.T) {
	f := NewFleet()
	sess := v6Session()
	f.PeerState(at0.Add(-time.Minute), sess, mrt.StateActive, mrt.StateEstablished)
	f.PeerAnnounce(at0, sess, pfx6, attrs)
	f.PeerWithdraw(at0.Add(15*time.Minute), sess, pfx6)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	data := f.Collector("rrc25").UpdatesData()
	recs, err := mrt.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if _, ok := recs[0].(*mrt.BGP4MPStateChange); !ok {
		t.Errorf("record 0 is %T", recs[0])
	}
	ann, ok := recs[1].(*mrt.BGP4MPMessage)
	if !ok {
		t.Fatalf("record 1 is %T", recs[1])
	}
	u, err := ann.Update()
	if err != nil {
		t.Fatal(err)
	}
	if u.Attrs.MPReach == nil || u.Attrs.MPReach.NLRI[0] != pfx6 {
		t.Errorf("announcement NLRI wrong: %+v", u.Attrs.MPReach)
	}
	if u.Attrs.Aggregator == nil || u.Attrs.Aggregator.Addr != attrs.Aggregator.Addr {
		t.Error("aggregator clock lost in archive")
	}
	if got := u.Attrs.ASPath.String(); got != "200 11 1 10 100" {
		t.Errorf("AS path %q", got)
	}
	wd, ok := recs[2].(*mrt.BGP4MPMessage)
	if !ok {
		t.Fatalf("record 2 is %T", recs[2])
	}
	wu, err := wd.Update()
	if err != nil {
		t.Fatal(err)
	}
	all := wu.WithdrawnAll()
	if len(all) != 1 || all[0] != pfx6 {
		t.Errorf("withdrawal prefixes %v", all)
	}
}

func TestIPv6OverIPv4Session(t *testing.T) {
	// The paper's peer 176.119.234.201 (AS211509) sends IPv6 routes over
	// an IPv4-addressed session.
	f := NewFleet()
	sess := v4SessionCarryingV6()
	f.PeerAnnounce(at0, sess, pfx6, attrs)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc25").UpdatesData()))
	if err != nil {
		t.Fatal(err)
	}
	m := recs[0].(*mrt.BGP4MPMessage)
	if !m.PeerIP.Is4() {
		t.Errorf("session peer IP %v, want IPv4", m.PeerIP)
	}
	u, err := m.Update()
	if err != nil {
		t.Fatal(err)
	}
	if u.Attrs.MPReach == nil || !u.Attrs.MPReach.NextHop.Is6() {
		t.Error("IPv6 NLRI needs an IPv6 next hop even on an IPv4 session")
	}
}

func TestIPv4PrefixUpdate(t *testing.T) {
	f := NewFleet()
	sess := netsim.Session{Collector: "rrc21", PeerAS: 16347, PeerIP: netip.MustParseAddr("192.0.2.77"), AFI: bgp.AFIIPv4}
	f.PeerAnnounce(at0, sess, pfx4, attrs)
	f.PeerWithdraw(at0.Add(time.Hour), sess, pfx4)
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc21").UpdatesData()))
	if err != nil {
		t.Fatal(err)
	}
	u, err := recs[0].(*mrt.BGP4MPMessage).Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.NLRI) != 1 || u.NLRI[0] != pfx4 {
		t.Errorf("v4 NLRI %v", u.NLRI)
	}
	if !u.Attrs.NextHop.Is4() {
		t.Errorf("v4 next hop %v", u.Attrs.NextHop)
	}
	wu, err := recs[1].(*mrt.BGP4MPMessage).Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(wu.Withdrawn) != 1 || wu.Withdrawn[0] != pfx4 {
		t.Errorf("v4 withdrawn %v", wu.Withdrawn)
	}
}

func TestRIBSnapshot(t *testing.T) {
	f := NewFleet()
	sessA := v6Session()
	sessB := v4SessionCarryingV6()
	f.PeerAnnounce(at0, sessA, pfx6, attrs)
	f.PeerAnnounce(at0.Add(time.Second), sessB, pfx6, attrs)
	f.PeerAnnounce(at0.Add(2*time.Second), sessA, pfx4, attrs)
	f.SnapshotRIBs(at0.Add(time.Hour))
	// Withdraw from one peer, snapshot again.
	f.PeerWithdraw(at0.Add(2*time.Hour), sessA, pfx6)
	f.SnapshotRIBs(at0.Add(9 * time.Hour))
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc25").DumpData()))
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot 1: index table + RIB(pfx4) + RIB(pfx6 with 2 entries).
	// Snapshot 2: index table + RIB(pfx4) + RIB(pfx6 with 1 entry).
	var tables []*mrt.PeerIndexTable
	var ribs []*mrt.RIB
	for _, r := range recs {
		switch v := r.(type) {
		case *mrt.PeerIndexTable:
			tables = append(tables, v)
		case *mrt.RIB:
			ribs = append(ribs, v)
		}
	}
	if len(tables) != 2 {
		t.Fatalf("got %d peer index tables", len(tables))
	}
	if len(tables[0].Peers) != 2 {
		t.Fatalf("table has %d peers", len(tables[0].Peers))
	}
	if len(ribs) != 4 {
		t.Fatalf("got %d RIB records", len(ribs))
	}
	count6 := func(after time.Time) int {
		for _, r := range ribs {
			if r.Prefix == pfx6 && !r.RecordTime().Before(after) {
				return len(r.Entries)
			}
		}
		return -1
	}
	if got := count6(at0.Add(time.Hour)); got != 2 {
		t.Errorf("first snapshot pfx6 entries = %d, want 2", got)
	}
	if got := count6(at0.Add(9 * time.Hour)); got != 1 {
		t.Errorf("second snapshot pfx6 entries = %d, want 1", got)
	}
	// RIB entries must reference valid peer table indexes and reconstruct
	// the AS path.
	for _, r := range ribs {
		for _, e := range r.Entries {
			if int(e.PeerIndex) >= len(tables[0].Peers) {
				t.Fatalf("entry references peer %d of %d", e.PeerIndex, len(tables[0].Peers))
			}
			if e.Attrs.ASPath.Length() == 0 {
				t.Error("RIB entry lost its AS path")
			}
		}
	}
}

func TestSessionDownFlushesState(t *testing.T) {
	f := NewFleet()
	sess := v6Session()
	f.PeerAnnounce(at0, sess, pfx6, attrs)
	f.PeerState(at0.Add(time.Minute), sess, mrt.StateEstablished, mrt.StateIdle)
	f.SnapshotRIBs(at0.Add(time.Hour))
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc25").DumpData()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if rib, ok := r.(*mrt.RIB); ok {
			t.Errorf("RIB record for %v present after session down", rib.Prefix)
		}
	}
}

func TestFleetDispatchAndNames(t *testing.T) {
	f := NewFleet()
	f.PeerAnnounce(at0, netsim.Session{Collector: "rrc00", PeerAS: 1, PeerIP: netip.MustParseAddr("2001:db8::1"), AFI: bgp.AFIIPv6}, pfx6, attrs)
	f.PeerAnnounce(at0, netsim.Session{Collector: "rrc25", PeerAS: 2, PeerIP: netip.MustParseAddr("2001:db8::2"), AFI: bgp.AFIIPv6}, pfx6, attrs)
	names := f.Names()
	if len(names) != 2 || names[0] != "rrc00" || names[1] != "rrc25" {
		t.Errorf("names %v", names)
	}
	if f.Records() != 2 {
		t.Errorf("records %d", f.Records())
	}
	if len(f.UpdatesData()) != 2 || len(f.DumpData()) != 2 {
		t.Error("data maps wrong size")
	}
}

func TestWriteArchive(t *testing.T) {
	dir := t.TempDir()
	f := NewFleet()
	f.PeerAnnounce(at0, v6Session(), pfx6, attrs)
	f.SnapshotRIBs(at0.Add(time.Hour))
	if err := f.WriteArchive(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"updates.mrt", "bview.mrt"} {
		b, err := os.ReadFile(filepath.Join(dir, "rrc25", name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
		if _, err := mrt.ReadAll(bytes.NewReader(b)); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}

func TestCollectorIDStable(t *testing.T) {
	a, b := collectorID("rrc21"), collectorID("rrc21")
	if a != b {
		t.Error("collector ID unstable")
	}
	if collectorID("rrc21") == collectorID("rrc25") {
		t.Error("collector IDs collide")
	}
	if !a.Is4() {
		t.Error("collector ID not IPv4")
	}
}

func TestDuplicateAnnouncementReplacesState(t *testing.T) {
	f := NewFleet()
	sess := v6Session()
	f.PeerAnnounce(at0, sess, pfx6, attrs)
	attrs2 := attrs
	attrs2.Path = bgp.NewASPath(200, 2, 1, 10, 100)
	f.PeerAnnounce(at0.Add(time.Minute), sess, pfx6, attrs2)
	f.SnapshotRIBs(at0.Add(time.Hour))
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc25").DumpData()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if rib, ok := r.(*mrt.RIB); ok && rib.Prefix == pfx6 {
			if len(rib.Entries) != 1 {
				t.Fatalf("entries = %d", len(rib.Entries))
			}
			if got := rib.Entries[0].Attrs.ASPath.String(); got != "200 2 1 10 100" {
				t.Errorf("snapshot path %q, want the replacement", got)
			}
		}
	}
}

func TestTapSeesEveryArchivedRecord(t *testing.T) {
	f := NewFleet()
	type tapped struct {
		collector string
		rec       mrt.Record
	}
	var got []tapped
	f.SetTap(func(name string, rec mrt.Record) {
		got = append(got, tapped{name, rec})
	})
	sess := v6Session()
	f.PeerState(at0.Add(-time.Minute), sess, mrt.StateActive, mrt.StateEstablished)
	f.PeerAnnounce(at0, sess, pfx6, attrs)
	f.PeerWithdraw(at0.Add(15*time.Minute), sess, pfx6)
	// A second collector created AFTER SetTap must inherit the tap.
	other := netsim.Session{
		Collector: "rrc00",
		PeerAS:    201,
		PeerIP:    netip.MustParseAddr("2001:db8:feed::2"),
		AFI:       bgp.AFIIPv6,
	}
	f.PeerAnnounce(at0, other, pfx6, attrs)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}

	if len(got) != f.Records() {
		t.Fatalf("tap saw %d records, archive has %d", len(got), f.Records())
	}
	byCollector := map[string]int{}
	for _, tp := range got {
		byCollector[tp.collector]++
	}
	if byCollector["rrc25"] != 3 || byCollector["rrc00"] != 1 {
		t.Fatalf("tap distribution %v, want rrc25:3 rrc00:1", byCollector)
	}
	// The tapped records are the archived records, in order.
	recs, err := mrt.ReadAll(bytes.NewReader(f.Collector("rrc25").UpdatesData()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, tp := range got {
		if tp.collector != "rrc25" {
			continue
		}
		if tp.rec.RecordTime() != recs[i].RecordTime() {
			t.Fatalf("tapped record %d at %s, archived at %s", i, tp.rec.RecordTime(), recs[i].RecordTime())
		}
		i++
	}
	// RIB snapshots are dump-archive only and must not hit the tap.
	before := len(got)
	f.SnapshotRIBs(at0.Add(8 * time.Hour))
	if len(got) != before {
		t.Fatalf("RIB snapshot leaked %d records into the tap", len(got)-before)
	}
}
