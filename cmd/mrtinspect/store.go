package main

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"zombiescope/internal/eventstore"
)

// inspectStore opens an event-store directory read-only and prints its
// segment layout: header fields, span-index statistics and per-collector
// event counts, then a store-wide rollup.
func inspectStore(w io.Writer, dir string) error {
	st, err := eventstore.Open(eventstore.Options{Dir: dir, ReadOnly: true})
	if err != nil {
		return err
	}
	defer st.Close()

	infos := st.SegmentInfos()
	if len(infos) == 0 {
		fmt.Fprintln(w, "empty store")
		return nil
	}
	const tsFmt = "2006-01-02 15:04:05"
	totalEvents, totalBytes := 0, int64(0)
	totalByColl := map[string]uint64{}
	for _, info := range infos {
		state := "sealed"
		if !info.Sealed {
			state = "active"
		}
		fmt.Fprintf(w, "%s  %s  seqs %d-%d  events %d  bytes %d  %s .. %s",
			filepath.Base(info.Path), state, info.FirstSeq, info.LastSeq,
			info.Events, info.Bytes,
			info.MinTime.UTC().Format(tsFmt), info.MaxTime.UTC().Format(tsFmt))
		if info.TornBytes > 0 {
			fmt.Fprintf(w, "  torn-tail %d bytes", info.TornBytes)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  index: %d collectors, %d peers, %d prefixes, %d span pairs, %d postings\n",
			info.Collectors, info.Peers, info.Prefixes, info.Pairs, info.Postings)
		names := make([]string, 0, len(info.CollectorCounts))
		for name := range info.CollectorCounts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  per-collector:")
		for _, name := range names {
			n := info.CollectorCounts[name]
			fmt.Fprintf(w, " %s=%d", name, n)
			totalByColl[name] += n
		}
		fmt.Fprintln(w)
		totalEvents += info.Events
		totalBytes += info.Bytes
	}
	fmt.Fprintf(w, "total: %d segments, %d events, %d bytes, seqs %d-%d\n",
		len(infos), totalEvents, totalBytes, st.FirstSeq(), st.LastSeq())
	names := make([]string, 0, len(totalByColl))
	for name := range totalByColl {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "per-collector:")
	for _, name := range names {
		fmt.Fprintf(w, " %s=%d", name, totalByColl[name])
	}
	fmt.Fprintln(w)
	return nil
}
