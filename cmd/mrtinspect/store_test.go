package main

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"zombiescope/internal/eventstore"
)

func TestInspectStore(t *testing.T) {
	dir := t.TempDir()
	st, err := eventstore.Open(eventstore.Options{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 5, 1, 0, 0, 0, 0, time.UTC)
	colls := []string{"rrc00", "rrc01"}
	for i := 1; i <= 200; i++ {
		ev := eventstore.Event{
			Seq:       uint64(i),
			Time:      base.Add(time.Duration(i) * time.Second),
			Collector: colls[i%2],
			PeerAS:    64500,
			PeerAddr:  netip.MustParseAddr("192.0.2.1"),
			Kind:      eventstore.KindJSON,
			Prefixes:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")},
			Payload:   []byte(`{"n":1}`),
		}
		if err := st.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := inspectStore(&sb, dir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"seqs 1-",
		"sealed",
		"per-collector: rrc00=100 rrc01=100",
		"200 events",
		"seqs 1-200",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "segments") {
		t.Fatalf("no rollup line:\n%s", out)
	}

	if err := inspectStore(&sb, t.TempDir()); err != nil {
		t.Fatalf("empty dir: %v", err)
	}
	if !strings.Contains(sb.String(), "empty store") {
		t.Fatal("empty store not reported")
	}
}
