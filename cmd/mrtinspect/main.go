// Command mrtinspect decodes an MRT file (BGP4MP updates or TABLE_DUMP_V2
// RIB dumps) and prints one line per record, similar in spirit to bgpdump.
// With -store it instead inspects a zombied event-store directory:
// per-segment headers, span-index statistics and per-collector counts.
//
// Usage:
//
//	mrtinspect file.mrt
//	mrtinspect -prefix 2a0d:3dc1:1851::/48 file.mrt   # filter to one prefix
//	mrtinspect -count file.mrt                        # summary only
//	mrtinspect -store ./store                         # event-store layout
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"

	"zombiescope/internal/mrt"
)

func main() {
	var (
		prefixStr = flag.String("prefix", "", "only show records touching this prefix")
		countOnly = flag.Bool("count", false, "print record counts only")
		storeDir  = flag.String("store", "", "inspect a zombied event-store directory instead of an MRT file")
	)
	flag.Parse()
	if *storeDir != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: mrtinspect -store <dir>")
			os.Exit(2)
		}
		if err := inspectStore(os.Stdout, *storeDir); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrtinspect [-prefix P] [-count] <file.mrt> | mrtinspect -store <dir>")
		os.Exit(2)
	}
	var filter netip.Prefix
	if *prefixStr != "" {
		p, err := netip.ParsePrefix(*prefixStr)
		if err != nil {
			fatal(err)
		}
		filter = p
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	rd := mrt.NewReader(f)
	counts := map[string]int{}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		switch r := rec.(type) {
		case *mrt.BGP4MPMessage:
			counts["BGP4MP_MESSAGE"]++
			if *countOnly {
				continue
			}
			u, err := r.Update()
			if err != nil {
				fmt.Printf("%s|%s|AS%d|<undecodable: %v>\n",
					r.Timestamp.Format("2006-01-02 15:04:05"), r.PeerIP, r.PeerAS, err)
				continue
			}
			for _, p := range u.WithdrawnAll() {
				if filter.IsValid() && p != filter {
					continue
				}
				fmt.Printf("%s|W|%s|AS%d|%s\n",
					r.Timestamp.Format("2006-01-02 15:04:05"), r.PeerIP, r.PeerAS, p)
			}
			for _, p := range u.Announced() {
				if filter.IsValid() && p != filter {
					continue
				}
				agg := ""
				if u.Attrs.Aggregator != nil {
					agg = fmt.Sprintf("|agg %s %s", u.Attrs.Aggregator.ASN, u.Attrs.Aggregator.Addr)
				}
				fmt.Printf("%s|A|%s|AS%d|%s|%s%s\n",
					r.Timestamp.Format("2006-01-02 15:04:05"), r.PeerIP, r.PeerAS, p, u.Attrs.ASPath, agg)
			}
		case *mrt.BGP4MPStateChange:
			counts["BGP4MP_STATE_CHANGE"]++
			if *countOnly {
				continue
			}
			fmt.Printf("%s|STATE|%s|AS%d|%s -> %s\n",
				r.Timestamp.Format("2006-01-02 15:04:05"), r.PeerIP, r.PeerAS, r.OldState, r.NewState)
		case *mrt.PeerIndexTable:
			counts["PEER_INDEX_TABLE"]++
			if *countOnly {
				continue
			}
			fmt.Printf("%s|PEER_INDEX|%s|%d peers\n",
				r.Timestamp.Format("2006-01-02 15:04:05"), r.ViewName, len(r.Peers))
		case *mrt.RIB:
			counts["RIB"]++
			if *countOnly {
				continue
			}
			if filter.IsValid() && r.Prefix != filter {
				continue
			}
			for _, e := range r.Entries {
				fmt.Printf("%s|RIB|%s|peer#%d|%s\n",
					r.Timestamp.Format("2006-01-02 15:04:05"), r.Prefix, e.PeerIndex, e.Attrs.ASPath)
			}
		}
	}
	if *countOnly {
		for k, v := range counts {
			fmt.Printf("%-20s %d\n", k, v)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
