package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/collector"
	"zombiescope/internal/eventstore"
	"zombiescope/internal/experiments"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
	"zombiescope/internal/pipeline"
	"zombiescope/internal/statusz"
)

// config carries the daemon's resolved settings, one field per flag.
// main translates the command line into one of these; lifecycle tests
// construct them directly (with ":0" listen addresses).
type config struct {
	listenAddr string
	httpAddr   string // empty disables the HTTP surface
	archiveDir string // empty selects the simulated author scenario
	seed       uint64
	scale      int
	schedule   string
	base       string
	approach   string
	origin     bgp.ASN
	stride     int
	from, to   string
	// storeDir enables the durable event store: every published event is
	// journaled there, and a restarted daemon recovers detector state and
	// resume-from-sequence history from it. Empty disables persistence.
	storeDir     string
	storeSegSize int64         // segment rotation size (0: eventstore default)
	storeRetain  int64         // retention budget in bytes (0: unlimited)
	storeSync    int           // fsync every N appends (0: on seal only)
	storeCompact time.Duration // background compaction interval (0: off)
	threshold    time.Duration
	speed        float64
	ringSize     int
	replayBuf    int
	allowBlock   bool
	writeBatch   int // frames per writev batch (0: server default)
	oneshot      bool
	// grace bounds how long an exiting daemon waits for feed handlers to
	// flush their subscribers' buffered events. Default 5s.
	grace time.Duration
	// traceFile, when set, installs a process-wide tracer and writes its
	// Chrome trace there at exit; traceSample is the broker's 1/N event
	// span sampling rate (0: no per-event spans, only coarse ones).
	traceFile   string
	traceSample int

	// replayGate, when non-nil, holds the replay until the channel is
	// closed. Lifecycle tests use it to observe the not-ready window;
	// main leaves it nil.
	replayGate <-chan struct{}
}

func (c config) graceOrDefault() time.Duration {
	if c.grace <= 0 {
		return 5 * time.Second
	}
	return c.grace
}

// daemon is one fully-wired zombied instance: feed source, broker,
// detection pipeline, feed server and HTTP surface, bound to live
// listeners. Everything is per-instance (no package-level state), so
// tests can run several daemons in one process.
type daemon struct {
	cfg    config
	logger *slog.Logger

	broker *livefeed.Broker
	pipe   *livefeed.Pipeline
	srv    *livefeed.Server
	store  *eventstore.Store // nil without -store-dir

	stream  []livefeed.SourcedRecord
	flushAt time.Time
	started time.Time   // process birth, for /statusz uptime
	tracer  *obs.Tracer // non-nil only with cfg.traceFile

	feedL net.Listener
	httpL net.Listener // nil when the HTTP surface is disabled

	// ready flips once the replay has finished (gates /readyz).
	ready atomic.Bool
	// stopping suppresses the accept-loop error that Close provokes.
	stopping atomic.Bool
}

// newDaemon loads the feed source and binds both listeners; after it
// returns, feedAddr/httpAddr are final and run can be called. On error
// nothing is left listening.
func newDaemon(cfg config, logger *slog.Logger) (*daemon, error) {
	feed, err := loadFeed(cfg)
	if err != nil {
		return nil, fmt.Errorf("loading feed source: %w", err)
	}
	stream, err := livefeed.MergeUpdates(feed.updates)
	if err != nil {
		return nil, fmt.Errorf("merging update archives: %w", err)
	}
	logger.Info("feed source ready",
		"records", len(stream),
		"collectors", len(feed.updates),
		"intervals", len(feed.intervals))

	// One registry carries the broker + detector instruments plus the Go
	// runtime gauges; /metrics unions it with the pipeline and
	// collector-fleet registries so the daemon is a single scrape target.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	bcfg := livefeed.Config{
		RingSize:    cfg.ringSize,
		ReplaySize:  cfg.replayBuf,
		Metrics:     livefeed.NewMetrics(reg),
		TraceSample: cfg.traceSample,
	}
	var store *eventstore.Store
	if cfg.storeDir != "" {
		store, err = eventstore.Open(eventstore.Options{
			Dir:          cfg.storeDir,
			SegmentBytes: cfg.storeSegSize,
			SyncEvery:    cfg.storeSync,
			RetainBytes:  cfg.storeRetain,
			Compact:      eventstore.CompactPolicy{Interval: cfg.storeCompact},
			Metrics:      eventstore.NewMetrics(reg),
		})
		if err != nil {
			return nil, fmt.Errorf("opening event store: %w", err)
		}
		bcfg.Journal = &livefeed.StoreJournal{Store: store}
		bcfg.StartSeq = store.LastSeq()
		logger.Info("event store open", "dir", cfg.storeDir,
			"first_seq", store.FirstSeq(), "last_seq", store.LastSeq(),
			"segments", len(store.SegmentInfos()))
	}
	broker := livefeed.NewBroker(bcfg)
	d := &daemon{
		cfg:    cfg,
		logger: logger,
		broker: broker,
		store:  store,
		pipe:   livefeed.NewPipeline(broker, feed.intervals, cfg.threshold),
		srv: &livefeed.Server{
			Broker: broker, Name: "zombied/1",
			AllowBlock: cfg.allowBlock, WriteBatch: cfg.writeBatch,
			// Connection-lifecycle errors arrive at reconnect-storm rate;
			// throttle them so a flapping client cannot flood the log.
			Log: obs.Throttled(obs.Component(logger, "livefeed"), time.Second, 4),
		},
		stream:  stream,
		flushAt: feed.flushAt,
		started: time.Now(),
	}
	if cfg.traceFile != "" {
		d.tracer = obs.NewTracer()
		obs.SetTracer(d.tracer)
	}
	d.feedL, err = net.Listen("tcp", cfg.listenAddr)
	if err != nil {
		d.closeStore()
		return nil, fmt.Errorf("feed listen: %w", err)
	}
	if cfg.httpAddr != "" {
		d.httpL, err = net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			d.feedL.Close()
			d.closeStore()
			return nil, fmt.Errorf("http listen: %w", err)
		}
	}
	return d, nil
}

// closeStore seals and closes the event store if one is open.
func (d *daemon) closeStore() {
	if d.store == nil {
		return
	}
	if err := d.store.Close(); err != nil {
		d.logger.Error("closing event store", "err", err)
	}
}

// feedAddr is the bound feed listener address (resolved ":0" included).
func (d *daemon) feedAddr() net.Addr { return d.feedL.Addr() }

// httpAddr is the bound HTTP listener address, or nil when disabled.
func (d *daemon) httpAddr() net.Addr {
	if d.httpL == nil {
		return nil
	}
	return d.httpL.Addr()
}

// run serves the feed, replays the source through the detector, and —
// when ctx is canceled (or immediately in oneshot mode once the replay
// completes) — exits gracefully: the broker closes first so subscribers
// stop filling, then the feed server drains every handler within the
// grace period, so events already queued to a subscriber are never
// dropped by an orderly exit.
func (d *daemon) run(ctx context.Context) error {
	go func() {
		if err := d.srv.Serve(d.feedL); err != nil && !d.stopping.Load() {
			d.logger.Error("feed server", "err", err)
		}
	}()
	d.logger.Info("feed listening", "addr", d.feedAddr().String())

	var httpSrv *http.Server
	if d.httpL != nil {
		httpSrv = &http.Server{Handler: d.httpMux()}
		go httpSrv.Serve(d.httpL)
		d.logger.Info("http listening", "addr", d.httpAddr().String(),
			"endpoints", "/metrics /metrics/livefeed /metrics/pipeline /statusz /healthz /readyz /debug/pprof/")
	}

	replayed := make(chan error, 1)
	go func() {
		if gate := d.cfg.replayGate; gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				replayed <- ctx.Err()
				return
			}
		}
		stream := d.stream
		if d.store != nil && d.store.LastSeq() > 0 {
			// Warm restart: rebuild the detector from the journal (alerts
			// muted — the previous run already delivered them) and resume
			// archive ingestion where the crash cut it off. Readiness
			// flips as soon as the recovery scan completes, not after the
			// full archive replay.
			n, err := d.pipe.Recover(d.store)
			if err != nil {
				replayed <- fmt.Errorf("recovering from event store: %w", err)
				return
			}
			offset := livefeed.ResumeOffset(stream, n)
			stream = stream[offset:]
			d.ready.Store(true)
			d.logger.Info("detector recovered from event store",
				"records", n, "resume_offset", offset, "remaining", len(stream))
		}
		err := d.pipe.Replay(ctx, stream, d.flushAt, d.cfg.speed)
		if err == nil {
			d.ready.Store(true)
		}
		replayed <- err
	}()

	var runErr error
	if d.cfg.oneshot {
		if err := <-replayed; err != nil && err != context.Canceled {
			runErr = fmt.Errorf("replay: %w", err)
		} else {
			d.logger.Info("replay done, exiting (oneshot)", "events", d.broker.Seq())
		}
	} else {
		select {
		case err := <-replayed:
			if err != nil && err != context.Canceled {
				runErr = fmt.Errorf("replay: %w", err)
			} else {
				d.logger.Info("replay done, serving subscribers (ctrl-c to exit)", "events", d.broker.Seq())
				<-ctx.Done()
			}
		case <-ctx.Done():
		}
	}

	d.stopping.Store(true)
	d.broker.Close()
	d.srv.Shutdown(d.cfg.graceOrDefault())
	if httpSrv != nil {
		httpSrv.Close()
	}
	// The broker is closed, so no further journal appends: seal and fsync
	// the store last so everything published is durable.
	d.closeStore()
	d.writeTrace()
	return runErr
}

// writeTrace exports the sampled event spans as a Chrome trace file and
// uninstalls the tracer. No-op without -trace.
func (d *daemon) writeTrace() {
	if d.tracer == nil {
		return
	}
	obs.SetTracer(nil)
	f, err := os.Create(d.cfg.traceFile)
	if err != nil {
		d.logger.Error("creating trace file", "err", err)
		return
	}
	defer f.Close()
	if err := d.tracer.WriteChromeTrace(f); err != nil {
		d.logger.Error("writing trace", "err", err)
		return
	}
	d.logger.Info("trace written", "path", d.cfg.traceFile, "spans", d.tracer.Len())
}

// httpMux assembles the daemon's observability surface: a unified
// Prometheus scrape, the legacy JSON snapshots, split liveness/readiness
// probes, and the Go profiler.
func (d *daemon) httpMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MultiHandler(d.broker.Metrics().Registry(), pipeline.Default.Registry(), collector.Registry()))
	mux.Handle("/metrics/livefeed", d.broker.Metrics().Handler())
	mux.Handle("/metrics/pipeline", pipeline.Default.Handler())
	mux.Handle("/statusz", statusz.Handler(d.status))
	// /healthz is pure liveness: the process is up and serving HTTP.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	// /readyz gates on the replay: a fresh daemon is not ready until the
	// archive has been fed through the detector (load balancers should
	// not route live subscribers to a daemon still warming up).
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ready := d.ready.Load()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		body := map[string]any{
			"ready":          ready,
			"seq":            d.broker.Seq(),
			"subscribers":    d.broker.SubscriberCount(),
			"pending_checks": d.pipe.PendingChecks(),
		}
		if d.store != nil {
			body["store_first_seq"] = d.store.FirstSeq()
			body["store_last_seq"] = d.store.LastSeq()
		}
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// status assembles the /statusz snapshot: every number a human reaches
// for first when a feed looks wrong, in one document. All sources are
// concurrency-safe reads (atomics, mutex-guarded snapshots), so the
// builder may run at any point of the daemon's life.
func (d *daemon) status() statusz.Status {
	m := d.broker.Metrics()
	st := statusz.Status{
		Server:         d.srv.Name,
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		UptimeSeconds:  time.Since(d.started).Seconds(),
		Ready:          d.ready.Load(),
		HeadSeq:        d.broker.Seq(),
		PendingChecks:  d.pipe.PendingChecks(),
		Subscribers:    d.broker.SubscriberCount(),
		Shards:         d.broker.ShardCount(),
		Counters:       m.Snapshot(),
		Stages:         m.LatencySummaries(),
		PipelineStages: pipeline.Default.StageSummaries(),
		Sessions:       d.broker.Sessions(),
		Runtime:        obs.ReadRuntimeStats(),
	}
	if d.store != nil {
		ss := &statusz.StoreStatus{
			Dir:      d.cfg.storeDir,
			FirstSeq: d.store.FirstSeq(),
			LastSeq:  d.store.LastSeq(),
		}
		for _, seg := range d.store.SegmentInfos() {
			ss.Segments++
			ss.Bytes += seg.Bytes
		}
		st.Store = ss
	}
	return st
}

// feedSource is the resolved record source: per-collector update archives
// plus the detection intervals covering them.
type feedSource struct {
	updates   map[string][]byte
	intervals []beacon.Interval
	flushAt   time.Time
}

// loadFeed resolves the daemon's record source: an on-disk archive with a
// schedule reconstructed from the config, or the simulated author
// scenario.
func loadFeed(cfg config) (*feedSource, error) {
	if cfg.archiveDir == "" {
		data, err := experiments.RunAuthorScenario(experiments.DefaultAuthorConfig(cfg.seed, cfg.scale))
		if err != nil {
			return nil, err
		}
		return &feedSource{
			updates:   data.Updates,
			intervals: data.Intervals,
			flushAt:   data.Config.TrackUntil,
		}, nil
	}
	intervals, err := scheduleIntervals(cfg)
	if err != nil {
		return nil, err
	}
	set, err := archive.Load(cfg.archiveDir)
	if err != nil {
		return nil, err
	}
	return &feedSource{
		updates:   set.Updates,
		intervals: intervals,
		flushAt:   flushInstant(intervals),
	}, nil
}

// scheduleIntervals rebuilds the beacon detection intervals from the
// schedule config (mirroring zombiehunt).
func scheduleIntervals(cfg config) ([]beacon.Interval, error) {
	from, err := time.Parse(time.RFC3339, cfg.from)
	if err != nil {
		return nil, fmt.Errorf("-from: %w", err)
	}
	to, err := time.Parse(time.RFC3339, cfg.to)
	if err != nil {
		return nil, fmt.Errorf("-to: %w", err)
	}
	var sched beacon.Schedule
	switch cfg.schedule {
	case "author":
		base, err := netip.ParsePrefix(cfg.base)
		if err != nil {
			return nil, err
		}
		ap := beacon.Recycle15d
		if cfg.approach == "24h" {
			ap = beacon.Recycle24h
		}
		sched = &beacon.AuthorSchedule{Base: base, OriginAS: cfg.origin, Approach: ap, SlotStride: cfg.stride}
	case "ris":
		v4, v6 := beacon.DefaultRISPrefixes(cfg.origin)
		sched = &beacon.RISSchedule{Prefixes4: v4, Prefixes6: v6, OriginAS: cfg.origin}
	default:
		return nil, fmt.Errorf("unknown -schedule %q", cfg.schedule)
	}
	intervals := sched.Intervals(from, to)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("no beacon intervals in [%s, %s]", from, to)
	}
	return intervals, nil
}

// flushInstant is when every interval check of the schedule has certainly
// fired: the last recycle horizon plus a margin.
func flushInstant(intervals []beacon.Interval) time.Time {
	var last time.Time
	for _, iv := range intervals {
		if iv.End.After(last) {
			last = iv.End
		}
	}
	return last.Add(24 * time.Hour)
}
