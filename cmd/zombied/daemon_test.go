package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"testing"
	"time"

	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
)

// testConfig is a small, fast daemon instance: simulated scenario on
// loopback with ephemeral ports, buffers sized so nothing is evicted.
func testConfig() config {
	return config{
		listenAddr: "127.0.0.1:0",
		httpAddr:   "127.0.0.1:0",
		seed:       42,
		scale:      64,
		threshold:  90 * time.Minute,
		ringSize:   1 << 13,
		replayBuf:  1 << 13,
		grace:      5 * time.Second,
	}
}

func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	l, err := obs.NewLogger(io.Discard, "text", "error")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// readyzBody is the /readyz JSON payload the tests care about.
type readyzBody struct {
	Ready         bool   `json:"ready"`
	Seq           uint64 `json:"seq"`
	Subscribers   int    `json:"subscribers"`
	PendingChecks int    `json:"pending_checks"`
}

func getReadyz(t *testing.T, base string) (int, readyzBody) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDaemonLifecycle exercises a full daemon life: serving while warming
// up (/healthz 200, /readyz 503), readiness flipping once the replay
// completes, and a graceful shutdown that drains a connected subscriber —
// every published sequence reaches the client even though it only starts
// reading after the shutdown begins.
func TestDaemonLifecycle(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig()
	cfg.replayGate = gate
	d, err := newDaemon(cfg, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx) }()

	base := "http://" + d.httpAddr().String()

	// Liveness is up before the replay: the process serves HTTP while
	// warming, it is just not ready.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if code, body := getReadyz(t, base); code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz before replay = %d ready=%v, want 503 ready=false", code, body.Ready)
	}

	// Subscribe before anything is published. FromStart means the whole
	// feed must reach this client even though it connected first.
	conn, err := livefeed.DialWith(d.feedAddr().String(), livefeed.Filter{}, livefeed.PolicyDropOldest, 0,
		livefeed.DialOptions{FromStart: true, IdleTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Ack.Lost != 0 {
		t.Fatalf("ack reports %d lost events on a fresh subscription", conn.Ack.Lost)
	}

	// The client deliberately does not read until the shutdown begins:
	// everything it is owed sits queued server-side, so the final
	// contiguity check below observes the drain, not normal streaming.
	startRead := make(chan struct{})
	type readResult struct {
		seqs []uint64
		err  error
	}
	readDone := make(chan readResult, 1)
	go func() {
		<-startRead
		var res readResult
		for {
			ev, err := conn.Next()
			if err != nil {
				res.err = err
				readDone <- res
				return
			}
			res.seqs = append(res.seqs, ev.Seq)
		}
	}()

	// Release the replay and wait for readiness.
	close(gate)
	deadline := time.Now().Add(2 * time.Minute)
	var head uint64
	for {
		code, body := getReadyz(t, base)
		if code == http.StatusOK {
			if !body.Ready || body.Seq == 0 || body.PendingChecks != 0 {
				t.Fatalf("ready daemon reports %+v", body)
			}
			head = body.Seq
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Graceful shutdown: broker first, then the handlers drain within the
	// grace period. The reader starts now — if the daemon dropped queued
	// events on exit, the contiguity check fails.
	cancel()
	close(startRead)
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after cancel")
	}

	var res readResult
	select {
	case res = <-readDone:
	case <-time.After(30 * time.Second):
		t.Fatal("subscriber connection never closed")
	}
	if uint64(len(res.seqs)) != head {
		t.Fatalf("subscriber drained %d events, daemon published %d (read ended with %v)",
			len(res.seqs), head, res.err)
	}
	for i, seq := range res.seqs {
		if seq != uint64(i+1) {
			t.Fatalf("sequence gap after graceful shutdown: position %d holds seq %d", i, seq)
		}
	}
}

// TestDaemonOneshot checks that -oneshot mode exits by itself after the
// replay, with the HTTP surface disabled.
func TestDaemonOneshot(t *testing.T) {
	cfg := testConfig()
	cfg.httpAddr = ""
	cfg.oneshot = true
	d, err := newDaemon(cfg, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.httpAddr() != nil {
		t.Fatal("http listener bound despite empty httpAddr")
	}
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(context.Background()) }()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("oneshot daemon did not exit after replay")
	}
	if d.broker.Seq() == 0 {
		t.Fatal("oneshot run published no events")
	}
	if !d.ready.Load() {
		t.Fatal("oneshot run finished without flipping ready")
	}
}

// TestDaemonStoreRecovery runs a daemon to completion with a durable
// event store, then restarts over the same directory: the second daemon
// must continue sequence numbering where the first stopped, become ready
// from the journal without republishing anything, and serve the complete
// first-run history to a FromStart subscriber with zero reported loss —
// even though the second run's in-memory replay window starts empty.
func TestDaemonStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	storeCfg := func() config {
		cfg := testConfig()
		cfg.storeDir = dir
		cfg.storeSegSize = 1 << 16
		return cfg
	}

	cfg1 := storeCfg()
	cfg1.httpAddr = ""
	cfg1.oneshot = true
	d1, err := newDaemon(cfg1, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	head := d1.broker.Seq()
	if head == 0 {
		t.Fatal("first run published nothing")
	}

	d2, err := newDaemon(storeCfg(), testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- d2.run(ctx) }()

	base := "http://" + d2.httpAddr().String()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := getReadyz(t, base)
		if code == http.StatusOK {
			if body.Seq != head {
				t.Fatalf("recovered daemon at seq %d, want %d (clean restart must republish nothing)", body.Seq, head)
			}
			if body.PendingChecks != 0 {
				t.Fatalf("recovered daemon left %d checks pending", body.PendingChecks)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The whole first-run history must come back from the journal.
	conn, err := livefeed.DialWith(d2.feedAddr().String(), livefeed.Filter{}, livefeed.PolicyDropOldest, 0,
		livefeed.DialOptions{FromStart: true, IdleTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Ack.Lost != 0 {
		t.Fatalf("ack reports %d lost events across restart", conn.Ack.Lost)
	}
	for want := uint64(1); want <= head; want++ {
		ev, err := conn.Next()
		if err != nil {
			t.Fatalf("reading journaled history at seq %d: %v", want, err)
		}
		if ev.Seq != want {
			t.Fatalf("history gap: got seq %d, want %d", ev.Seq, want)
		}
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("second run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run did not exit after cancel")
	}
}

// TestDaemonListenErrors pins the error paths of newDaemon: a bad feed
// address fails, and a bad HTTP address fails without leaking the
// already-bound feed listener.
func TestDaemonListenErrors(t *testing.T) {
	lg := testLogger(t)
	cfg := testConfig()
	cfg.listenAddr = "256.0.0.1:0"
	if _, err := newDaemon(cfg, lg); err == nil {
		t.Fatal("bad feed listen address accepted")
	}

	cfg = testConfig()
	cfg.httpAddr = "256.0.0.1:0"
	d1, err := newDaemon(cfg, lg)
	if err == nil {
		t.Fatal("bad http listen address accepted")
	}
	_ = d1
	// The feed port the failed attempt grabbed must be released: a
	// second daemon on the same ephemeral setup binds cleanly.
	d2, err := newDaemon(testConfig(), lg)
	if err != nil {
		t.Fatalf("daemon after failed attempt: %v", err)
	}
	d2.feedL.Close()
	if d2.httpL != nil {
		d2.httpL.Close()
	}
}
