package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs/obstest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// startDaemon boots a daemon, runs it until ready, and returns it with
// its HTTP base URL plus a cancel that performs a graceful shutdown.
func startDaemon(t *testing.T, cfg config) (d *daemon, base string, stop func()) {
	t.Helper()
	d, err := newDaemon(cfg, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx) }()
	base = "http://" + d.httpAddr().String()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, _ := getReadyz(t, base)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return d, base, func() {
		cancel()
		select {
		case err := <-runDone:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	}
}

// jsonPaths flattens a decoded JSON document into its sorted set of key
// paths: maps contribute "parent.key", arrays recurse into their first
// element as "parent[]". Values are discarded — the paths pin the shape
// of the /statusz contract, not one run's numbers.
func jsonPaths(v any, prefix string, out map[string]bool) {
	switch vv := v.(type) {
	case map[string]any:
		for k, child := range vv {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			jsonPaths(child, p, out)
		}
	case []any:
		if len(vv) > 0 {
			jsonPaths(vv[0], prefix+"[]", out)
		}
	}
}

// TestDaemonStatusz pins the /statusz JSON contract: the key-path shape
// against a golden file (zombietop and the CI smoke test parse this
// document), plus the live values a ready daemon with one subscriber
// must report.
func TestDaemonStatusz(t *testing.T) {
	cfg := testConfig()
	cfg.storeDir = t.TempDir() // so the golden covers the store section
	d, base, stop := startDaemon(t, cfg)
	defer stop()

	// One connected subscriber so the sessions array is populated.
	conn, err := livefeed.DialWith(d.feedAddr().String(), livefeed.Filter{}, livefeed.PolicyDropOldest, 0,
		livefeed.DialOptions{FromStart: true, IdleTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Next(); err != nil { // at least one frame flushed
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q, want application/json", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decoding /statusz: %v\n%s", err, raw)
	}

	// Shape: sorted key paths against the golden. The two derived
	// detect-latency counters only appear once a detection fired, so they
	// are normalized out of the shape.
	if c, ok := doc["counters"].(map[string]any); ok {
		delete(c, "detect_latency_avg_us")
		delete(c, "detect_latency_count")
	}
	paths := map[string]bool{}
	jsonPaths(doc, "", paths)
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"
	golden := filepath.Join("testdata", "statusz_keys.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("/statusz key paths diverge from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Values: the things a ready daemon with one draining subscriber
	// cannot legitimately report as zero.
	var st struct {
		Server      string           `json:"server"`
		GoVersion   string           `json:"go_version"`
		NumCPU      int              `json:"num_cpu"`
		Ready       bool             `json:"ready"`
		HeadSeq     uint64           `json:"head_seq"`
		Subscribers int              `json:"subscribers"`
		Counters    map[string]int64 `json:"counters"`
		Stages      map[string]struct {
			Count uint64 `json:"count"`
		} `json:"stages"`
		Sessions []struct {
			ID     uint64 `json:"id"`
			Policy string `json:"policy"`
		} `json:"sessions"`
		Store *struct {
			LastSeq  uint64 `json:"last_seq"`
			Segments int    `json:"segments"`
			Bytes    int64  `json:"bytes"`
		} `json:"store"`
		Runtime struct {
			Goroutines int64 `json:"goroutines"`
		} `json:"runtime"`
		UnixNanos int64 `json:"unix_nanos"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server != "zombied/1" || !st.Ready || st.NumCPU < 1 || st.GoVersion == "" {
		t.Errorf("header fields wrong: %+v", st)
	}
	if st.HeadSeq == 0 || st.Counters["records_in"] == 0 {
		t.Errorf("ready daemon reports head_seq=%d records_in=%d", st.HeadSeq, st.Counters["records_in"])
	}
	if st.Subscribers != 1 || len(st.Sessions) != 1 || st.Sessions[0].Policy != "drop-oldest" {
		t.Errorf("sessions wrong: subscribers=%d sessions=%+v", st.Subscribers, st.Sessions)
	}
	if st.Stages["publish"].Count == 0 || st.Stages["detect"].Count == 0 {
		t.Errorf("stage summaries empty: %+v", st.Stages)
	}
	if st.Store == nil || st.Store.LastSeq != st.HeadSeq || st.Store.Segments == 0 || st.Store.Bytes == 0 {
		t.Errorf("store section wrong: %+v (head %d)", st.Store, st.HeadSeq)
	}
	if st.Runtime.Goroutines < 1 || st.UnixNanos == 0 {
		t.Errorf("runtime/stamp missing: goroutines=%d unix_nanos=%d", st.Runtime.Goroutines, st.UnixNanos)
	}

	// The HTML view serves from the same builder.
	resp2, err := http.Get(base + "/statusz?format=html")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(resp2.Header.Get("Content-Type"), "text/html") ||
		!strings.Contains(string(html), "zombied/1") {
		t.Errorf("html view wrong: ct=%q body starts %.60q", resp2.Header.Get("Content-Type"), html)
	}
}

// TestDaemonMetricsScrape checks that the unified /metrics scrape of a
// ready daemon carries the latency-provenance series: stage and e2e
// histograms, the per-subscriber session gauges, the journal watermarks,
// and the runtime bridge — all on one page.
func TestDaemonMetricsScrape(t *testing.T) {
	d, base, stop := startDaemon(t, testConfig())
	defer stop()

	conn, err := livefeed.DialWith(d.feedAddr().String(), livefeed.Filter{}, livefeed.PolicyDropOldest, 0,
		livefeed.DialOptions{FromStart: true, IdleTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Next(); err != nil {
		t.Fatal(err)
	}

	// Catch-up frames are excluded from the e2e histogram (their ingest
	// stamps are historical), so publish one live event after the
	// subscriber attached and drain to it — the only kind of delivery
	// that legitimately observes e2e.
	liveSeq := d.broker.Publish(livefeed.Event{Channel: "test", Type: "notice", Timestamp: time.Now()})
	for {
		ev, err := conn.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq >= liveSeq {
			break
		}
	}

	// The server observes e2e just after the flush that carried the live
	// event, concurrently with the client reading it — poll the scrape
	// briefly instead of racing that observation.
	var samples map[string]float64
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		samples = obstest.ParsePrometheus(t, string(body))
		if samples["livefeed_e2e_seconds_count"] > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if samples[`livefeed_stage_seconds_count{stage="detect"}`] == 0 {
		t.Error("detect stage histogram not populated")
	}
	if samples[`livefeed_stage_seconds_count{stage="flush"}`] == 0 {
		t.Error("flush stage histogram not populated")
	}
	if samples["livefeed_e2e_seconds_count"] == 0 {
		t.Error("e2e latency histogram not populated")
	}
	if samples["livefeed_bytes_written_total"] == 0 {
		t.Error("bytes written counter not populated")
	}
	foundLag := false
	for name := range samples {
		if strings.HasPrefix(name, "livefeed_subscriber_lag{") {
			foundLag = true
		}
	}
	if !foundLag {
		t.Error("no per-subscriber lag gauge on the scrape")
	}
	if samples["livefeed_journal_head_seq"] == 0 {
		t.Error("journal head gauge not populated")
	}
	if samples["livefeed_watermark_unix_seconds"] == 0 {
		t.Error("watermark gauge not populated")
	}
	if samples["go_goroutines"] == 0 {
		t.Error("runtime bridge not on the unified scrape")
	}
}

// TestDaemonTrace runs a oneshot daemon with -trace -trace-sample 1 and
// checks the exported Chrome trace holds the per-event span trees.
func TestDaemonTrace(t *testing.T) {
	cfg := testConfig()
	cfg.httpAddr = ""
	cfg.oneshot = true
	cfg.traceFile = filepath.Join(t.TempDir(), "trace.json")
	cfg.traceSample = 1
	d, err := newDaemon(cfg, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a Chrome trace JSON array: %v", err)
	}
	names := map[string]int{}
	for _, ev := range events {
		if n, ok := ev["name"].(string); ok {
			names[n]++
		}
	}
	for _, want := range []string{"livefeed.event", "encode", "fanout", "livefeed.replay"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, names)
		}
	}
}
