// Command zombied is the live zombie-detection daemon: it serves a
// RIS-Live-style feed of collector records plus a dedicated channel of
// real-time zombie/resurrection alerts, implementing the paper's §6
// "real-time detection of BGP zombies" as a network service.
//
// The daemon replays an MRT archive directory (as produced by beaconsim,
// layout <dir>/<collector>/updates.mrt) or, with no -archive, generates
// the paper's author-beacon scenario in memory. Records are published on
// the "updates" feed channel; a server-side zombie.StreamDetector watches
// the same stream and publishes alerts on the "zombie" channel the moment
// a stuck route passes the threshold.
//
// Usage:
//
//	zombied -listen :4739 -http :8479 \
//	        [-archive ./archive -from 2024-06-10T11:30:00Z -to 2024-06-22T17:30:00Z \
//	         -base 2a0d:3dc1::/32 -approach 15d -stride 1] \
//	        [-seed 42 -scale 8]           (simulated scenario mode) \
//	        [-threshold 90m] [-speed 0] [-policy-block] [-oneshot]
//
// Subscribers connect with livefeed.Client (or any implementation of the
// frame protocol documented in internal/livefeed), choosing server-side
// filters and a backpressure policy (drop-oldest, kick-slowest; block
// only when -policy-block is set). -speed 0 replays as fast as possible;
// -speed 3600 plays one simulated hour per wall second.
//
// The HTTP endpoint is the daemon's observability surface:
//
//	/metrics           Prometheus text exposition of every subsystem
//	                   (livefeed broker + detector, pipeline stages,
//	                   collector fleet) as one scrape target
//	/metrics/livefeed  legacy expvar-style JSON broker counters
//	/metrics/pipeline  legacy expvar-style JSON pipeline counters
//	/healthz           pure liveness (200 once the HTTP server is up)
//	/readyz            readiness: 503 until the archive replay completes
//	/debug/pprof/      the standard Go profiler endpoints
//
// Logs are structured (log/slog); -log-format selects text or json and
// -log-level the threshold.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/collector"
	"zombiescope/internal/experiments"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
	"zombiescope/internal/pipeline"
)

func main() {
	var (
		listenAddr = flag.String("listen", ":4739", "feed TCP listen address")
		httpAddr   = flag.String("http", ":8479", "HTTP listen address for /healthz and /metrics (empty disables)")
		archiveDir = flag.String("archive", "", "MRT archive directory to replay (empty: simulate the author scenario)")
		seed       = flag.Uint64("seed", 42, "simulation seed (scenario mode)")
		scale      = flag.Int("scale", 8, "simulation scale divisor (scenario mode)")
		schedKind  = flag.String("schedule", "author", "beacon schedule for archive mode: author | ris")
		baseStr    = flag.String("base", "2a0d:3dc1::/32", "beacon base prefix (author schedule)")
		approach   = flag.String("approach", "15d", "beacon recycle approach: 24h | 15d (author schedule)")
		origin     = flag.Uint64("origin", 210312, "beacon origin ASN")
		stride     = flag.Int("stride", 1, "beacon slot stride (archive mode)")
		fromStr    = flag.String("from", "", "experiment start, RFC 3339 (archive mode)")
		toStr      = flag.String("to", "", "experiment end, RFC 3339 (archive mode)")
		threshold  = flag.Duration("threshold", 90*time.Minute, "zombie detection threshold")
		speed      = flag.Float64("speed", 0, "replay speed: 0 = as fast as possible, N = N simulated seconds per wall second")
		ringSize   = flag.Int("ring", 1024, "per-subscriber ring buffer size (events)")
		replayBuf  = flag.Int("resume-buffer", 4096, "events retained for resume-from-sequence")
		allowBlock = flag.Bool("policy-block", false, "allow subscribers to request the block backpressure policy")
		oneshot    = flag.Bool("oneshot", false, "exit once the replay completes instead of serving forever")
		logFormat  = flag.String("log-format", "text", "log output format: text | json")
		logLevel   = flag.String("log-level", "info", "log threshold: debug | info | warn | error")
	)
	flag.Parse()

	base, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger := obs.Component(base, "zombied")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	feed, err := loadFeed(*archiveDir, *schedKind, *baseStr, *approach, *fromStr, *toStr, bgp.ASN(*origin), *stride, *seed, *scale)
	if err != nil {
		fatal("loading feed source", err)
	}
	stream, err := livefeed.MergeUpdates(feed.updates)
	if err != nil {
		fatal("merging update archives", err)
	}
	logger.Info("feed source ready",
		"records", len(stream),
		"collectors", len(feed.updates),
		"intervals", len(feed.intervals))

	// One registry carries the broker + detector instruments; /metrics
	// unions it with the pipeline and collector-fleet registries so the
	// daemon is a single scrape target.
	reg := obs.NewRegistry()
	broker := livefeed.NewBroker(livefeed.Config{
		RingSize:   *ringSize,
		ReplaySize: *replayBuf,
		Metrics:    livefeed.NewMetrics(reg),
	})
	pipe := livefeed.NewPipeline(broker, feed.intervals, *threshold)

	srv := &livefeed.Server{Broker: broker, Name: "zombied/1", AllowBlock: *allowBlock}
	l, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		fatal("feed listen", err)
	}
	logger.Info("feed listening", "addr", l.Addr().String())
	go func() {
		if err := srv.Serve(l); err != nil && !done.Load() {
			logger.Error("feed server", "err", err)
		}
	}()

	if *httpAddr != "" {
		mux := newHTTPMux(reg, broker, pipe)
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal("http listen", err)
		}
		logger.Info("http listening", "addr", hl.Addr().String(),
			"endpoints", "/metrics /metrics/livefeed /metrics/pipeline /healthz /readyz /debug/pprof/")
		go http.Serve(hl, mux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	replayed := make(chan error, 1)
	go func() {
		err := pipe.Replay(ctx, stream, feed.flushAt, *speed)
		done.Store(true)
		replayed <- err
	}()

	if *oneshot {
		if err := <-replayed; err != nil && err != context.Canceled {
			fatal("replay", err)
		}
		logger.Info("replay done, exiting (oneshot)", "events", broker.Seq())
	} else {
		select {
		case err := <-replayed:
			if err != nil && err != context.Canceled {
				fatal("replay", err)
			}
			logger.Info("replay done, serving subscribers (ctrl-c to exit)", "events", broker.Seq())
			<-ctx.Done()
		case <-ctx.Done():
		}
	}
	srv.Close()
	broker.Close()
}

// newHTTPMux assembles the daemon's observability surface: a unified
// Prometheus scrape, the legacy JSON snapshots, split liveness/readiness
// probes, and the Go profiler.
func newHTTPMux(reg *obs.Registry, broker *livefeed.Broker, pipe *livefeed.Pipeline) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MultiHandler(reg, pipeline.Default.Registry(), collector.Registry()))
	mux.Handle("/metrics/livefeed", broker.Metrics().Handler())
	mux.Handle("/metrics/pipeline", pipeline.Default.Handler())
	// /healthz is pure liveness: the process is up and serving HTTP.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	// /readyz gates on the replay: a fresh daemon is not ready until the
	// archive has been fed through the detector (load balancers should
	// not route live subscribers to a daemon still warming up).
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ready := done.Load()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"ready":          ready,
			"seq":            broker.Seq(),
			"subscribers":    broker.SubscriberCount(),
			"pending_checks": pipe.PendingChecks(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// done flips once the replay has finished (read by /healthz).
var done atomic.Bool

// feedSource is the resolved record source: per-collector update archives
// plus the detection intervals covering them.
type feedSource struct {
	updates   map[string][]byte
	intervals []beacon.Interval
	flushAt   time.Time
}

// loadFeed resolves the daemon's record source: an on-disk archive with a
// schedule reconstructed from flags, or the simulated author scenario.
func loadFeed(dir, schedKind, baseStr, approach, fromStr, toStr string, origin bgp.ASN, stride int, seed uint64, scale int) (*feedSource, error) {
	if dir == "" {
		data, err := experiments.RunAuthorScenario(experiments.DefaultAuthorConfig(seed, scale))
		if err != nil {
			return nil, err
		}
		return &feedSource{
			updates:   data.Updates,
			intervals: data.Intervals,
			flushAt:   data.Config.TrackUntil,
		}, nil
	}
	intervals, err := scheduleIntervals(schedKind, baseStr, approach, fromStr, toStr, origin, stride)
	if err != nil {
		return nil, err
	}
	set, err := archive.Load(dir)
	if err != nil {
		return nil, err
	}
	return &feedSource{
		updates:   set.Updates,
		intervals: intervals,
		flushAt:   flushInstant(intervals),
	}, nil
}

// scheduleIntervals rebuilds the beacon detection intervals from the
// schedule flags (mirroring zombiehunt).
func scheduleIntervals(schedKind, baseStr, approach, fromStr, toStr string, origin bgp.ASN, stride int) ([]beacon.Interval, error) {
	from, err := time.Parse(time.RFC3339, fromStr)
	if err != nil {
		return nil, fmt.Errorf("-from: %w", err)
	}
	to, err := time.Parse(time.RFC3339, toStr)
	if err != nil {
		return nil, fmt.Errorf("-to: %w", err)
	}
	var sched beacon.Schedule
	switch schedKind {
	case "author":
		base, err := netip.ParsePrefix(baseStr)
		if err != nil {
			return nil, err
		}
		ap := beacon.Recycle15d
		if approach == "24h" {
			ap = beacon.Recycle24h
		}
		sched = &beacon.AuthorSchedule{Base: base, OriginAS: origin, Approach: ap, SlotStride: stride}
	case "ris":
		v4, v6 := beacon.DefaultRISPrefixes(origin)
		sched = &beacon.RISSchedule{Prefixes4: v4, Prefixes6: v6, OriginAS: origin}
	default:
		return nil, fmt.Errorf("unknown -schedule %q", schedKind)
	}
	intervals := sched.Intervals(from, to)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("no beacon intervals in [%s, %s]", from, to)
	}
	return intervals, nil
}

// flushInstant is when every interval check of the schedule has certainly
// fired: the last recycle horizon plus a margin.
func flushInstant(intervals []beacon.Interval) time.Time {
	var last time.Time
	for _, iv := range intervals {
		if iv.End.After(last) {
			last = iv.End
		}
	}
	return last.Add(24 * time.Hour)
}
