// Command zombied is the live zombie-detection daemon: it serves a
// RIS-Live-style feed of collector records plus a dedicated channel of
// real-time zombie/resurrection alerts, implementing the paper's §6
// "real-time detection of BGP zombies" as a network service.
//
// The daemon replays an MRT archive directory (as produced by beaconsim,
// layout <dir>/<collector>/updates.mrt) or, with no -archive, generates
// the paper's author-beacon scenario in memory. Records are published on
// the "updates" feed channel; a server-side zombie.StreamDetector watches
// the same stream and publishes alerts on the "zombie" channel the moment
// a stuck route passes the threshold.
//
// Usage:
//
//	zombied -listen :4739 -http :8479 \
//	        [-archive ./archive -from 2024-06-10T11:30:00Z -to 2024-06-22T17:30:00Z \
//	         -base 2a0d:3dc1::/32 -approach 15d -stride 1] \
//	        [-seed 42 -scale 8]           (simulated scenario mode) \
//	        [-store-dir ./store -store-segment-bytes 67108864 -store-retain 0 \
//	         -store-sync 0 -store-compact 0] \
//	        [-threshold 90m] [-speed 0] [-policy-block] [-oneshot] [-grace 5s]
//
// With -store-dir the daemon journals every published event to a durable
// segmented event store (internal/eventstore). Across restarts the store
// serves resume-from-sequence for windows long gone from RAM, and the
// daemon recovers its detector state from the journal instead of
// replaying the whole archive — /readyz flips near-instantly and
// ingestion resumes exactly where the previous run stopped.
//
// Subscribers connect with livefeed.Client (or any implementation of the
// frame protocol documented in internal/livefeed), choosing server-side
// filters and a backpressure policy (drop-oldest, kick-slowest; block
// only when -policy-block is set). -speed 0 replays as fast as possible;
// -speed 3600 plays one simulated hour per wall second.
//
// On SIGINT/SIGTERM the daemon exits gracefully: the broker closes so
// subscribers stop filling, then every feed handler gets up to -grace to
// flush its subscriber's buffered events before the connection is cut.
//
// The HTTP endpoint is the daemon's observability surface:
//
//	/metrics           Prometheus text exposition of every subsystem
//	                   (livefeed broker + detector, pipeline stages,
//	                   collector fleet, Go runtime) as one scrape target
//	/metrics/livefeed  legacy expvar-style JSON broker counters
//	/metrics/pipeline  legacy expvar-style JSON pipeline counters
//	/statusz           one-page introspection snapshot: stage latency
//	                   summaries, per-subscriber sessions, store
//	                   watermarks (JSON; ?format=html for a browser view;
//	                   `zombietop` renders it live in a terminal)
//	/healthz           pure liveness (200 once the HTTP server is up)
//	/readyz            readiness: 503 until the archive replay completes
//	/debug/pprof/      the standard Go profiler endpoints
//
// With -trace the daemon samples 1 of every -trace-sample published
// events into a per-event span tree (encode, journal append, fan-out,
// socket flush) and writes a Chrome trace file ("chrome://tracing",
// Perfetto) at exit.
//
// Logs are structured (log/slog); -log-format selects text or json and
// -log-level the threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zombiescope/internal/bgp"
	"zombiescope/internal/obs"
)

func main() {
	var (
		listenAddr = flag.String("listen", ":4739", "feed TCP listen address")
		httpAddr   = flag.String("http", ":8479", "HTTP listen address for /healthz and /metrics (empty disables)")
		archiveDir = flag.String("archive", "", "MRT archive directory to replay (empty: simulate the author scenario)")
		seed       = flag.Uint64("seed", 42, "simulation seed (scenario mode)")
		scale      = flag.Int("scale", 8, "simulation scale divisor (scenario mode)")
		schedKind  = flag.String("schedule", "author", "beacon schedule for archive mode: author | ris")
		baseStr    = flag.String("base", "2a0d:3dc1::/32", "beacon base prefix (author schedule)")
		approach   = flag.String("approach", "15d", "beacon recycle approach: 24h | 15d (author schedule)")
		origin     = flag.Uint64("origin", 210312, "beacon origin ASN")
		stride     = flag.Int("stride", 1, "beacon slot stride (archive mode)")
		fromStr    = flag.String("from", "", "experiment start, RFC 3339 (archive mode)")
		toStr      = flag.String("to", "", "experiment end, RFC 3339 (archive mode)")
		storeDir   = flag.String("store-dir", "", "durable event store directory (empty disables persistence)")
		storeSeg   = flag.Int64("store-segment-bytes", 0, "store segment size before rotation (0: 64 MiB)")
		storeRet   = flag.Int64("store-retain", 0, "store retention budget in bytes, oldest segments dropped first (0: unlimited)")
		storeSync  = flag.Int("store-sync", 0, "fsync the store every N appends (0: only on segment seal)")
		storeComp  = flag.Duration("store-compact", 0, "background store compaction interval (0 disables)")
		threshold  = flag.Duration("threshold", 90*time.Minute, "zombie detection threshold")
		speed      = flag.Float64("speed", 0, "replay speed: 0 = as fast as possible, N = N simulated seconds per wall second")
		ringSize   = flag.Int("ring", 1024, "per-subscriber ring buffer size (events)")
		replayBuf  = flag.Int("resume-buffer", 4096, "events retained for resume-from-sequence")
		allowBlock = flag.Bool("policy-block", false, "allow subscribers to request the block backpressure policy")
		writeBatch = flag.Int("write-batch", 0, "max frames gathered per writev to a subscriber (0: default 64)")
		oneshot    = flag.Bool("oneshot", false, "exit once the replay completes instead of serving forever")
		grace      = flag.Duration("grace", 5*time.Second, "how long a graceful exit waits for subscribers to drain")
		traceFile  = flag.String("trace", "", "write a Chrome trace of sampled event spans to this file at exit (empty disables tracing)")
		traceSmpl  = flag.Int("trace-sample", 256, "trace 1 of every N published events (with -trace; 0 disables event spans)")
		logFormat  = flag.String("log-format", "text", "log output format: text | json")
		logLevel   = flag.String("log-level", "info", "log threshold: debug | info | warn | error")
	)
	flag.Parse()

	base, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger := obs.Component(base, "zombied")

	cfg := config{
		listenAddr:   *listenAddr,
		httpAddr:     *httpAddr,
		archiveDir:   *archiveDir,
		seed:         *seed,
		scale:        *scale,
		schedule:     *schedKind,
		base:         *baseStr,
		approach:     *approach,
		origin:       bgp.ASN(*origin),
		stride:       *stride,
		from:         *fromStr,
		to:           *toStr,
		storeDir:     *storeDir,
		storeSegSize: *storeSeg,
		storeRetain:  *storeRet,
		storeSync:    *storeSync,
		storeCompact: *storeComp,
		threshold:    *threshold,
		speed:        *speed,
		ringSize:     *ringSize,
		replayBuf:    *replayBuf,
		allowBlock:   *allowBlock,
		writeBatch:   *writeBatch,
		oneshot:      *oneshot,
		grace:        *grace,
		traceFile:    *traceFile,
		traceSample:  *traceSmpl,
	}
	d, err := newDaemon(cfg, logger)
	if err != nil {
		logger.Error("starting daemon", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.run(ctx); err != nil {
		logger.Error("daemon", "err", err)
		os.Exit(1)
	}
}
