// Command benchcheck gates benchmark regressions in CI.
//
// It reads `go test -bench ... -benchmem` output (stdin or -in), takes the
// per-sub-benchmark median across repeated -count runs, and compares the
// result against a committed baseline JSON (see BENCH_detect.json at the
// repo root). A sub-benchmark fails the gate when it regresses more than
// the baseline's tolerance_pct.
//
// allocs/op is a deterministic property of the code and is checked
// everywhere; B/op is checked when the baseline opts in (check_bytes).
// ns/op depends on the machine, so it is only checked when the run's
// `cpu:` line matches the baseline's recorded cpu string (override with
// -force-time to check it regardless). Baselines may also carry
// parallel-speedup ratio gates (speedups), which apply only on a machine
// whose runtime.NumCPU matches the gate's recorded core count and are
// reported and skipped otherwise.
//
// Usage:
//
//	go test -bench PipelineDetect -benchmem -benchtime 1x -count 3 -run NONE . \
//	  | go run ./cmd/benchcheck -baseline BENCH_detect.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"zombiescope/internal/benchstat"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_detect.json", "baseline JSON file to compare against")
	inPath := flag.String("in", "", "benchmark output file (default: stdin)")
	forceTime := flag.Bool("force-time", false, "check ns/op even if the cpu does not match the baseline's")
	flag.Parse()

	base, err := benchstat.LoadBaseline(*baselinePath)
	if err != nil {
		fatalf("benchcheck: %v", err)
	}
	// Core-count drift shifts parallel benchmarks even on a matching cpu
	// string (CI runners carve containers out of the same silicon with
	// different quotas), so it is reported for the record but never fails
	// the median gates — the cpu-string match still decides whether ns/op
	// counts, and speedup ratio gates self-skip on the mismatch.
	if base.NumCPU > 0 && base.NumCPU != runtime.NumCPU() {
		fmt.Printf("benchcheck: note: running on %d CPUs, baseline recorded on %d\n",
			runtime.NumCPU(), base.NumCPU)
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("benchcheck: %v", err)
		}
		defer f.Close()
		in = f
	}
	run, err := benchstat.ParseRun(in)
	if err != nil {
		fatalf("benchcheck: %v", err)
	}

	report, ok := benchstat.Compare(base, run, benchstat.Options{
		ForceTime: *forceTime,
		NumCPU:    runtime.NumCPU(),
	})
	fmt.Print(report)
	if !ok {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
