// Command experiments regenerates the paper's tables and figures from
// synthetic scenarios.
//
// Usage:
//
//	experiments -list
//	experiments -run Table1
//	experiments -run all [-seed 42] [-scale 8] [-json]
//
// Scale divides the paper's measurement period durations (scale 1 runs the
// full-length periods and the full 96-prefixes/day beacon cadence; the
// default 8 finishes in under a minute).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"zombiescope/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment ID to run, or 'all'")
		seed    = flag.Uint64("seed", 42, "scenario seed")
		scale   = flag.Int("scale", 8, "period scale divisor (1 = paper-length)")
		jsonOut = flag.Bool("json", false, "emit machine-readable metrics as JSON instead of text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-24s %s\n", e.ID, e.Title)
			fmt.Printf("%-24s paper: %s\n\n", "", e.Paper)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -list | -run <ID|all> [-seed N] [-scale N]")
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	var toRun []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	}
	type jsonResult struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Paper   string             `json:"paper"`
		Metrics map[string]float64 `json:"metrics"`
	}
	var jsonResults []jsonResult
	for _, e := range toRun {
		if !*jsonOut {
			fmt.Printf("### %s — %s\n", e.ID, e.Title)
			fmt.Printf("    paper: %s\n\n", e.Paper)
		}
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			jsonResults = append(jsonResults, jsonResult{
				ID: e.ID, Title: e.Title, Paper: e.Paper, Metrics: res.Metrics,
			})
			continue
		}
		fmt.Println(res.Text)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
