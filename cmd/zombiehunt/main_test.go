package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/collector"
	"zombiescope/internal/netsim"
	"zombiescope/internal/topology"
)

// Regenerate the committed fixture and golden file with:
//
//	go test ./cmd/zombiehunt -run TestGoldenJSON -update
var update = flag.Bool("update", false, "regenerate testdata fixture and golden file")

const (
	fixtureDir = "testdata/archive"
	goldenFile = "testdata/golden.json"
)

// goldenArgs pins every input of the golden run. The window covers one day
// of the author 15-day schedule at stride 8 (an announcement every 2h).
func goldenArgs(parallel string) []string {
	return []string{
		"-archive", fixtureDir,
		"-schedule", "author",
		"-base", "2a0d:3dc1::/32",
		"-approach", "15d",
		"-stride", "8",
		"-from", "2024-06-10T00:00:00Z",
		"-to", "2024-06-11T00:00:00Z",
		"-origin", "100",
		"-lifespans",
		"-json",
		"-parallel", parallel,
	}
}

func goldenSchedule() beacon.Schedule {
	return &beacon.AuthorSchedule{
		Base:       netip.MustParsePrefix("2a0d:3dc1::/32"),
		OriginAS:   100,
		Approach:   beacon.Recycle15d,
		SlotStride: 8,
	}
}

// writeFixture simulates the golden scenario — a wedged link plus a noisy
// collector peer, enough for outbreaks, lifespans and a root cause — and
// writes the MRT archive the golden run loads.
func writeFixture(t *testing.T) {
	t.Helper()
	g := topology.New()
	for _, a := range []struct {
		asn  bgp.ASN
		tier int
	}{{1, 1}, {2, 1}, {10, 2}, {11, 2}, {12, 2}, {100, 3}, {200, 3}, {300, 3}} {
		g.AddAS(a.asn, "", a.tier)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddP2P(1, 2))
	must(g.AddC2P(10, 1))
	must(g.AddC2P(11, 1))
	must(g.AddC2P(11, 2))
	must(g.AddC2P(12, 2))
	must(g.AddC2P(100, 10))
	must(g.AddC2P(200, 11))
	must(g.AddC2P(300, 12))

	sim := netsim.New(g, netsim.Config{Seed: 4242})
	fleet := collector.NewFleet()
	sim.SetSink(fleet)
	for _, s := range []netsim.Session{
		{Collector: "rrc00", PeerAS: 200, PeerIP: netip.MustParseAddr("2001:db8:feed::200"), AFI: bgp.AFIIPv6},
		{Collector: "rrc01", PeerAS: 300, PeerIP: netip.MustParseAddr("2001:db8:feed::300"), AFI: bgp.AFIIPv6},
	} {
		must(sim.AddCollectorSession(s))
	}

	from := time.Date(2024, 6, 10, 0, 0, 0, 0, time.UTC)
	to := time.Date(2024, 6, 11, 0, 0, 0, 0, time.UTC)
	// A day-long wedge on 1→11: withdrawals never reach 11, so rrc00's
	// peer 200 keeps reporting the beacons long past every withdrawal.
	sim.Faults().WedgeLink(1, 11, 0, from.Add(3*time.Hour), to.Add(20*time.Hour), nil)
	sim.Faults().DropCollectorWithdrawals(300, 0.4, nil)

	for _, ev := range goldenSchedule().Events(from, to) {
		if ev.Announce {
			must(sim.ScheduleAnnounce(ev.At, 100, ev.Prefix, ev.Aggregator))
		} else {
			must(sim.ScheduleWithdraw(ev.At, 100, ev.Prefix))
		}
	}

	sim.EstablishCollectorSessions(from.Add(-time.Hour))
	for at := from.Add(8 * time.Hour); at.Before(to.Add(24 * time.Hour)); at = at.Add(8 * time.Hour) {
		sim.Run(at)
		fleet.SnapshotRIBs(at)
	}
	sim.RunAll()
	must(fleet.Err())

	must(os.RemoveAll(fixtureDir))
	must(os.MkdirAll(filepath.Dir(fixtureDir), 0o755))
	must(archive.WriteFleet(fixtureDir, fleet))
}

// canonicalJSON re-marshals a JSON document through a generic value, so keys
// come out sorted and formatting is normalized before comparison.
func canonicalJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGoldenJSON(t *testing.T) {
	if *update {
		writeFixture(t)
		var buf bytes.Buffer
		if err := run(goldenArgs("0"), &buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s", fixtureDir, buf.Len(), goldenFile)
	}
	golden, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	want := canonicalJSON(t, golden)

	// The sequential run and every parallel run must match the committed
	// golden byte for byte after canonicalization.
	for _, par := range []string{"0", "1", "4"} {
		var buf bytes.Buffer
		if err := run(goldenArgs(par), &buf); err != nil {
			t.Fatalf("-parallel %s: %v", par, err)
		}
		got := canonicalJSON(t, buf.Bytes())
		if !bytes.Equal(got, want) {
			t.Errorf("-parallel %s: JSON report diverges from golden file\n--- got ---\n%s\n--- want ---\n%s",
				par, got, want)
		}
	}
}

// TestMmapMatchesLoad runs the golden scenario through the mmapped
// zero-copy ingest path and the load-into-memory path and requires
// byte-identical reports — the smoke test for the -mmap wiring.
func TestMmapMatchesLoad(t *testing.T) {
	for _, par := range []string{"0", "4"} {
		var mapped, loaded bytes.Buffer
		if err := run(append(goldenArgs(par), "-mmap=true"), &mapped); err != nil {
			t.Fatalf("-mmap=true -parallel %s: %v", par, err)
		}
		if err := run(append(goldenArgs(par), "-mmap=false"), &loaded); err != nil {
			t.Fatalf("-mmap=false -parallel %s: %v", par, err)
		}
		if !bytes.Equal(mapped.Bytes(), loaded.Bytes()) {
			t.Errorf("-parallel %s: mmap and load reports differ\n--- mmap ---\n%s\n--- load ---\n%s",
				par, mapped.Bytes(), loaded.Bytes())
		}
	}
}

// TestTraceOutput runs the golden scenario with -trace and checks the
// emitted Chrome trace-event JSON carries the detection stack's spans.
func TestTraceOutput(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(append(goldenArgs("4"), "-trace", traceFile), &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	names := make(map[string]bool)
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event phase %v, want X", ev["ph"])
		}
		if name, ok := ev["name"].(string); ok {
			names[name] = true
		}
	}
	for _, want := range []string{"pipeline.fold", "pipeline.decode", "zombie.build_history", "zombie.detect"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}

// TestProfileOutput runs the golden scenario with -cpuprofile and
// -memprofile and checks both files come out as non-empty gzipped
// protobuf profiles (pprof files start with the gzip magic).
func TestProfileOutput(t *testing.T) {
	dir := t.TempDir()
	cpuFile := filepath.Join(dir, "cpu.pprof")
	memFile := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	args := append(goldenArgs("4"), "-cpuprofile", cpuFile, "-memprofile", memFile)
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpuFile, memFile} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (%d bytes)", filepath.Base(path), len(data))
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-from", "not-a-time"}, &buf); err == nil {
		t.Error("bad -from accepted")
	}
	if err := run(goldenArgs("0")[:0], &buf); err == nil {
		t.Error("missing -from/-to accepted")
	}
}
