package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"zombiescope/internal/archive"
	"zombiescope/internal/experiments"
)

// Golden outbreak fixture corpus: one committed synthetic scenario per
// anomaly detector (netsim-generated MRT plus the expected findings
// JSON), mirroring the TestGoldenJSON pattern. Regenerate with:
//
//	go test ./cmd/zombiehunt -run TestAnomalyGolden -update

const anomalyFixtureSeed = 0xf1c5

func anomalyFixtureDir(kind string) string {
	return filepath.Join("testdata", "anomaly", kind, "archive")
}

func anomalyGoldenFile(kind string) string {
	return filepath.Join("testdata", "anomaly", kind+".json")
}

// anomalyArgs pins the report run for one fixture: the same author
// beacon campaign the scenario generator schedules, plus -detect
// selecting just the scenario's target detector.
func anomalyArgs(kind, parallel string) []string {
	return []string{
		"-archive", anomalyFixtureDir(kind),
		"-schedule", "author",
		"-base", "2a0d:3dc1::/32",
		"-approach", "24h",
		"-stride", "24",
		"-from", "2024-06-10T00:00:00Z",
		"-to", "2024-06-11T00:00:00Z",
		"-origin", "100",
		"-detect", kind,
		"-json",
		"-parallel", parallel,
	}
}

func writeAnomalyFixture(t *testing.T, kind string) {
	t.Helper()
	sc, err := experiments.RunAnomalyScenario(kind, anomalyFixtureSeed)
	if err != nil {
		t.Fatal(err)
	}
	dir := anomalyFixtureDir(kind)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := archive.Write(dir, &archive.Set{Updates: sc.Updates}); err != nil {
		t.Fatal(err)
	}
}

func TestAnomalyGolden(t *testing.T) {
	for _, kind := range experiments.AnomalyKinds() {
		t.Run(kind, func(t *testing.T) {
			golden := anomalyGoldenFile(kind)
			if *update {
				writeAnomalyFixture(t, kind)
				var buf bytes.Buffer
				if err := run(anomalyArgs(kind, "0"), &buf); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s and %s", anomalyFixtureDir(kind), golden)
			}
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			want := canonicalJSON(t, data)

			// The committed expectation must actually contain the
			// scenario's pathology: at least one finding from the detector
			// of the same name.
			var rep struct {
				Anomalies *struct {
					ByDetector map[string]int `json:"by_detector"`
				} `json:"anomalies"`
			}
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Anomalies == nil || rep.Anomalies.ByDetector[kind] == 0 {
				t.Fatalf("golden for %s scenario has no %s findings", kind, kind)
			}

			for _, par := range []string{"0", "1", "4"} {
				var buf bytes.Buffer
				if err := run(anomalyArgs(kind, par), &buf); err != nil {
					t.Fatalf("-parallel %s: %v", par, err)
				}
				got := canonicalJSON(t, buf.Bytes())
				if !bytes.Equal(got, want) {
					t.Errorf("-parallel %s: report diverges from golden\n--- got ---\n%s\n--- want ---\n%s", par, got, want)
				}
			}
		})
	}
}
