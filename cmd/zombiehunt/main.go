// Command zombiehunt runs the revised zombie detection methodology over an
// MRT archive directory (as produced by beaconsim, or any collector export
// using the same layout: <dir>/<collector>/updates.mrt and optional
// <dir>/<collector>/bview.mrt).
//
// Usage:
//
//	zombiehunt -archive ./archive -base 2a0d:3dc1::/32 -approach 15d \
//	           -from 2024-06-10T11:30:00Z -to 2024-06-22T17:30:00Z \
//	           [-threshold 90m] [-lifespans] [-dot palm.dot] [-schedule ris]
//
// The beacon schedule (base prefix, approach, window) tells the detector
// which prefixes to track and where the beacon intervals fall. Detection
// follows the paper: state reconstruction from raw updates at message
// granularity, per-interval evaluation, Aggregator-clock dedup, and
// noisy-peer flagging.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/zombie"
)

func main() {
	var (
		archiveDir = flag.String("archive", "archive", "MRT archive directory")
		schedKind  = flag.String("schedule", "author", "beacon schedule: author | ris")
		baseStr    = flag.String("base", "2a0d:3dc1::/32", "beacon base prefix (author schedule)")
		approach   = flag.String("approach", "15d", "beacon recycle approach: 24h | 15d (author schedule)")
		fromStr    = flag.String("from", "", "experiment start (RFC 3339)")
		toStr      = flag.String("to", "", "experiment end (RFC 3339)")
		origin     = flag.Uint64("origin", 210312, "beacon origin ASN")
		stride     = flag.Int("stride", 1, "beacon slot stride (announcements every stride*15min)")
		threshold  = flag.Duration("threshold", 90*time.Minute, "zombie detection threshold")
		lifespans  = flag.Bool("lifespans", false, "track lifespans from RIB dumps")
		dotOut     = flag.String("dot", "", "write the most impactful outbreak's palm-tree graph (Graphviz DOT) to this file")
	)
	flag.Parse()

	from, err := time.Parse(time.RFC3339, *fromStr)
	if err != nil {
		fatal(fmt.Errorf("-from: %w", err))
	}
	to, err := time.Parse(time.RFC3339, *toStr)
	if err != nil {
		fatal(fmt.Errorf("-to: %w", err))
	}
	var sched beacon.Schedule
	switch *schedKind {
	case "author":
		base, err := netip.ParsePrefix(*baseStr)
		if err != nil {
			fatal(err)
		}
		ap := beacon.Recycle15d
		if *approach == "24h" {
			ap = beacon.Recycle24h
		}
		sched = &beacon.AuthorSchedule{
			Base:       base,
			OriginAS:   bgp.ASN(*origin),
			Approach:   ap,
			SlotStride: *stride,
		}
	case "ris":
		v4, v6 := beacon.DefaultRISPrefixes(bgp.ASN(*origin))
		sched = &beacon.RISSchedule{Prefixes4: v4, Prefixes6: v6, OriginAS: bgp.ASN(*origin)}
	default:
		fatal(fmt.Errorf("unknown -schedule %q", *schedKind))
	}
	intervals := sched.Intervals(from, to)
	if len(intervals) == 0 {
		fatal(fmt.Errorf("no beacon intervals in [%s, %s]", from, to))
	}

	set, err := archive.Load(*archiveDir)
	if err != nil {
		fatal(err)
	}
	updates, dumps := set.Updates, set.Dumps
	fmt.Printf("archive: %d collectors, %d beacon intervals\n", len(updates), len(intervals))

	det := &zombie.Detector{Threshold: *threshold}
	rep, err := det.Detect(updates, intervals)
	if err != nil {
		fatal(err)
	}

	summary := zombie.Summarize(rep, zombie.NoisyConfig{}, 5)
	fmt.Println()
	summary.Render(os.Stdout)

	if *dotOut != "" && len(summary.TopOutbreaks) > 0 {
		top := summary.TopOutbreaks[0].Outbreak
		if err := os.WriteFile(*dotOut, []byte(zombie.OutbreakGraphDOT(&top)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\npalm-tree graph of %s written to %s\n", top.Prefix, *dotOut)
	}

	if *lifespans {
		lr, err := zombie.TrackLifespans(dumps, intervals, zombie.LifespanConfig{})
		if err != nil {
			fatal(err)
		}
		durs := lr.Durations(24*time.Hour, summary.NoisyASSet(), summary.NoisyAddrSet())
		fmt.Printf("\nlifespans (>= 1 day, noisy excluded): %d outbreaks\n", len(durs))
		for _, d := range durs {
			fmt.Printf("  %.1f days\n", d.Hours()/24)
		}
		if res := lr.Resurrections(); len(res) > 0 {
			fmt.Println("\nresurrections:")
			for _, r := range res {
				fmt.Printf("  %s at %s %s: vanished %s, reappeared %s (path %s)\n",
					r.Prefix, r.Peer.AS, r.Peer.Collector,
					r.LastSeen.Format(time.DateOnly), r.ReappearedAt.Format(time.DateOnly), r.Path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
