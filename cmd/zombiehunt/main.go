// Command zombiehunt runs the revised zombie detection methodology over an
// MRT archive directory (as produced by beaconsim, or any collector export
// using the same layout: <dir>/<collector>/updates.mrt and optional
// <dir>/<collector>/bview.mrt).
//
// Usage:
//
//	zombiehunt -archive ./archive -base 2a0d:3dc1::/32 -approach 15d \
//	           -from 2024-06-10T11:30:00Z -to 2024-06-22T17:30:00Z \
//	           [-threshold 90m] [-lifespans] [-dot palm.dot] [-schedule ris] [-json] \
//	           [-detect all] \
//	           [-trace trace.json] [-progress 5s] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -detect runs the pluggable anomaly framework alongside the beacon
// methodology: "all" or a comma-separated subset of zombie, moas,
// hyperspecific, community. Findings are reported per detector (and
// under "anomalies" with -json). The anomaly detectors reconstruct a
// track-all history — every prefix in the archive, not just beacon
// prefixes — so expect more memory than the beacon-only run.
//
// -trace writes the run's span tree as Chrome trace-event JSON (open in
// chrome://tracing or Perfetto) — decode, shard build, merge and interval
// evaluation show up as nested slices. -progress logs a structured
// pipeline heartbeat to stderr at the given interval, for watching a
// long archive run without polluting the report on stdout. -cpuprofile
// and -memprofile write pprof profiles covering the whole run (the heap
// profile is taken after a final GC, so it shows retained memory, not
// transient decode garbage); inspect with `go tool pprof`.
//
// The beacon schedule (base prefix, approach, window) tells the detector
// which prefixes to track and where the beacon intervals fall. Detection
// follows the paper: state reconstruction from raw updates at message
// granularity, per-interval evaluation, Aggregator-clock dedup, and
// noisy-peer flagging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/obs"
	"zombiescope/internal/pipeline"
	"zombiescope/internal/zombie"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags in, report on w.
func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("zombiehunt", flag.ContinueOnError)
	var (
		archiveDir = fs.String("archive", "archive", "MRT archive directory")
		schedKind  = fs.String("schedule", "author", "beacon schedule: author | ris")
		baseStr    = fs.String("base", "2a0d:3dc1::/32", "beacon base prefix (author schedule)")
		approach   = fs.String("approach", "15d", "beacon recycle approach: 24h | 15d (author schedule)")
		fromStr    = fs.String("from", "", "experiment start (RFC 3339)")
		toStr      = fs.String("to", "", "experiment end (RFC 3339)")
		origin     = fs.Uint64("origin", 210312, "beacon origin ASN")
		stride     = fs.Int("stride", 1, "beacon slot stride (announcements every stride*15min)")
		threshold  = fs.Duration("threshold", 90*time.Minute, "zombie detection threshold")
		lifespans  = fs.Bool("lifespans", false, "track lifespans from RIB dumps")
		dotOut     = fs.String("dot", "", "write the most impactful outbreak's palm-tree graph (Graphviz DOT) to this file")
		jsonOut    = fs.Bool("json", false, "emit the report as one JSON document on stdout instead of text")
		detect     = fs.String("detect", "", "run anomaly detectors over the archive: 'all' or a comma-separated subset of "+joinNames())
		moasMin    = fs.Duration("moas-min", zombie.DefaultMOASMinDuration, "minimum concurrent-origin overlap for a MOAS conflict finding")
		hyperMin   = fs.Duration("hyper-min", zombie.DefaultHyperMinDuration, "minimum visibility for a hyper-specific prefix finding")
		stormMin   = fs.Int("storm-events", zombie.DefaultStormMinEvents, "community changes within -storm-window that constitute a noise storm")
		stormWin   = fs.Duration("storm-window", zombie.DefaultStormWindow, "rate window for community-storm detection")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "pipeline workers for decode/detection (0 = sequential; the report is identical either way)")
		useMmap    = fs.Bool("mmap", true, "mmap the archive files and decode zero-copy instead of loading them into memory (the report is identical either way)")
		traceOut   = fs.String("trace", "", "write the run's spans as Chrome trace-event JSON to this file")
		progress   = fs.Duration("progress", 0, "log a pipeline progress heartbeat to stderr at this interval (0 disables)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (after GC) to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		stop, perr := startCPUProfile(*cpuProfile)
		if perr != nil {
			return perr
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	if *traceOut != "" {
		tr := obs.NewTracer()
		obs.SetTracer(tr)
		defer func() {
			obs.SetTracer(nil)
			if werr := writeTrace(tr, *traceOut); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if *progress > 0 {
		logger, lerr := obs.NewLogger(os.Stderr, "text", "info")
		if lerr != nil {
			return lerr
		}
		defer startProgress(obs.Component(logger, "zombiehunt"), *progress)()
	}

	from, err := time.Parse(time.RFC3339, *fromStr)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	to, err := time.Parse(time.RFC3339, *toStr)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	var sched beacon.Schedule
	switch *schedKind {
	case "author":
		base, err := netip.ParsePrefix(*baseStr)
		if err != nil {
			return err
		}
		ap := beacon.Recycle15d
		if *approach == "24h" {
			ap = beacon.Recycle24h
		}
		sched = &beacon.AuthorSchedule{
			Base:       base,
			OriginAS:   bgp.ASN(*origin),
			Approach:   ap,
			SlotStride: *stride,
		}
	case "ris":
		v4, v6 := beacon.DefaultRISPrefixes(bgp.ASN(*origin))
		sched = &beacon.RISSchedule{Prefixes4: v4, Prefixes6: v6, OriginAS: bgp.ASN(*origin)}
	default:
		return fmt.Errorf("unknown -schedule %q", *schedKind)
	}
	intervals := sched.Intervals(from, to)
	if len(intervals) == 0 {
		return fmt.Errorf("no beacon intervals in [%s, %s]", from, to)
	}

	det := &zombie.Detector{Threshold: *threshold, Parallelism: *parallel}
	var (
		rep        *zombie.Report
		dumps      map[string][]byte
		collectors int
		// The archive bytes stay reachable for the optional -detect pass,
		// in whichever form the ingest path produced them.
		mappedUpdates map[string][][]byte
		loadedUpdates map[string][]byte
	)
	if *useMmap {
		// Zero-copy path: each rotated file stays its own mmap segment and
		// the pipeline decodes record-aligned chunks straight out of the
		// mappings — no concatenated in-memory copy of the archive. The
		// mappings stay pinned until the run is done (borrowed decode
		// scratch aliases them only during the fold, but dump bytes are
		// read during -lifespans).
		ms, merr := archive.OpenMapped(*archiveDir)
		if merr != nil {
			return merr
		}
		defer ms.Close()
		collectors = len(ms.Updates)
		dumps = ms.Dumps
		mappedUpdates = ms.Updates
		if !*jsonOut {
			fmt.Fprintf(w, "archive: %d collectors, %d beacon intervals\n", collectors, len(intervals))
		}
		if rep, err = det.DetectStreams(ms.Updates, intervals); err != nil {
			return err
		}
	} else {
		set, lerr := archive.Load(*archiveDir)
		if lerr != nil {
			return lerr
		}
		collectors = len(set.Updates)
		dumps = set.Dumps
		loadedUpdates = set.Updates
		if !*jsonOut {
			fmt.Fprintf(w, "archive: %d collectors, %d beacon intervals\n", collectors, len(intervals))
		}
		if rep, err = det.Detect(set.Updates, intervals); err != nil {
			return err
		}
	}

	summary := zombie.Summarize(rep, zombie.NoisyConfig{}, 5)
	var lr *zombie.LifespanReport
	if *lifespans {
		if lr, err = zombie.TrackLifespans(dumps, intervals, zombie.LifespanConfig{Parallelism: *parallel}); err != nil {
			return err
		}
	}

	var anomalies *zombie.AnomalyReport
	if *detect != "" {
		var names []string
		if *detect != "all" {
			names = splitDetect(*detect)
		}
		dets, derr := zombie.BuildAnomalyDetectors(names, zombie.AnomalyConfig{
			Intervals:        intervals,
			Threshold:        *threshold,
			MOASMinDuration:  *moasMin,
			HyperMinDuration: *hyperMin,
			StormMinEvents:   *stormMin,
			StormWindow:      *stormWin,
			Parallelism:      *parallel,
		})
		if derr != nil {
			return derr
		}
		// Track-all history: the anomaly detectors see every prefix in the
		// archive, not just beacon prefixes.
		var h *zombie.History
		if mappedUpdates != nil {
			h, err = zombie.BuildHistoryStreams(mappedUpdates, nil, *parallel)
		} else {
			h, err = zombie.BuildHistoryParallel(loadedUpdates, nil, *parallel)
		}
		if err != nil {
			return err
		}
		anomalies = zombie.RunAnomalyDetectors(h, zombie.Window{From: from, To: to}, dets, *parallel)
	}

	if *jsonOut {
		if err := writeJSONReport(w, collectors, summary, lr, anomalies); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(w)
		summary.Render(w)
		if anomalies != nil {
			renderAnomalies(w, anomalies)
		}
	}

	if *dotOut != "" && len(summary.TopOutbreaks) > 0 {
		top := summary.TopOutbreaks[0].Outbreak
		if err := os.WriteFile(*dotOut, []byte(zombie.OutbreakGraphDOT(&top)), 0o644); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(w, "\npalm-tree graph of %s written to %s\n", top.Prefix, *dotOut)
		}
	}

	if *lifespans && !*jsonOut {
		durs := lr.Durations(24*time.Hour, summary.NoisyASSet(), summary.NoisyAddrSet())
		fmt.Fprintf(w, "\nlifespans (>= 1 day, noisy excluded): %d outbreaks\n", len(durs))
		for _, d := range durs {
			fmt.Fprintf(w, "  %.1f days\n", d.Hours()/24)
		}
		if res := lr.Resurrections(); len(res) > 0 {
			fmt.Fprintln(w, "\nresurrections:")
			for _, r := range res {
				fmt.Fprintf(w, "  %s at %s %s: vanished %s, reappeared %s (path %s)\n",
					r.Prefix, r.Peer.AS, r.Peer.Collector,
					r.LastSeen.Format(time.DateOnly), r.ReappearedAt.Format(time.DateOnly), r.Path)
			}
		}
	}
	return nil
}

// joinNames renders the registered detector names for the -detect usage
// string.
func joinNames() string {
	return strings.Join(zombie.AnomalyDetectorNames(), ",")
}

// splitDetect parses the -detect list.
func splitDetect(s string) []string {
	var names []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// renderAnomalies prints the per-detector report sections.
func renderAnomalies(w io.Writer, rep *zombie.AnomalyReport) {
	fmt.Fprintf(w, "\nanomaly detectors (%d findings):\n", len(rep.Findings))
	names := make([]string, 0, len(rep.ByDetector))
	for name := range rep.ByDetector {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "\n[%s] %d findings\n", name, rep.ByDetector[name])
		for _, a := range rep.Filter(name) {
			fmt.Fprintf(w, "  %s %s", a.Kind, a.Prefix)
			if a.Peer != (zombie.PeerID{}) {
				fmt.Fprintf(w, " peer AS%d %s@%s", a.Peer.AS, a.Peer.Addr, a.Peer.Collector)
			}
			if len(a.Origins) > 0 {
				fmt.Fprintf(w, " origins %v", a.Origins)
			}
			fmt.Fprintf(w, " [%s .. %s] %s\n",
				a.Start.Format(time.RFC3339), a.End.Format(time.RFC3339), a.Detail)
		}
	}
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function to defer.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile forces a GC and snapshots retained heap to path — the
// number that matters for the pooled/interned hot path is what survives
// collection, not transient decode garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace flushes the collected spans as Chrome trace-event JSON.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProgress launches the heartbeat goroutine and returns its stop
// function. Each tick logs the shared pipeline counters, so a long run
// shows decode/detection advancing even before any report is printed.
func startProgress(l *slog.Logger, every time.Duration) func() {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s := pipeline.Default.Snapshot()
				l.Info("pipeline progress",
					"records_decoded", s["records_decoded"],
					"bytes_decoded", s["bytes_decoded"],
					"events_sharded", s["events_sharded"],
					"intervals_evaluated", s["intervals_evaluated"],
					"decode_us", s["decode_us"],
					"detect_us", s["detect_us"])
			}
		}
	}()
	return func() { close(done) }
}

// JSON report shapes (-json). Field names are stable: scripts depend on
// them.
type jsonReport struct {
	ThresholdMinutes float64        `json:"threshold_minutes"`
	Collectors       int            `json:"collectors"`
	Announcements    int            `json:"announcements"`
	Counts           jsonCounts     `json:"counts"`
	AffectedPercent  float64        `json:"announcements_affected_percent"`
	NoisyPeers       []jsonPeer     `json:"noisy_peers"`
	TopOutbreaks     []jsonOutbreak `json:"top_outbreaks"`
	// Lifespans is present only with -lifespans.
	Lifespans *jsonLifespans `json:"lifespans,omitempty"`
	// Anomalies is present only with -detect.
	Anomalies *jsonAnomalies `json:"anomalies,omitempty"`
}

type jsonAnomalies struct {
	ByDetector map[string]int `json:"by_detector"`
	Findings   []jsonAnomaly  `json:"findings"`
}

type jsonAnomaly struct {
	Detector        string    `json:"detector"`
	Kind            string    `json:"kind"`
	Prefix          string    `json:"prefix"`
	Peer            *jsonPeer `json:"peer,omitempty"`
	Origins         []uint32  `json:"origins,omitempty"`
	Start           time.Time `json:"start"`
	End             time.Time `json:"end"`
	LifespanMinutes float64   `json:"lifespan_minutes"`
	Count           int       `json:"count"`
	Detail          string    `json:"detail,omitempty"`
}

type jsonCounts struct {
	WithDoubleCounting jsonCount `json:"with_double_counting"`
	Deduped            jsonCount `json:"deduped"`
	Clean              jsonCount `json:"clean"`
}

type jsonCount struct {
	Outbreaks int `json:"outbreaks"`
	Routes    int `json:"routes"`
}

type jsonPeer struct {
	Collector string `json:"collector"`
	AS        uint32 `json:"as"`
	Addr      string `json:"addr"`
}

type jsonOutbreak struct {
	Prefix           string         `json:"prefix"`
	IntervalStart    time.Time      `json:"interval_start"`
	IntervalWithdraw time.Time      `json:"interval_withdraw"`
	Routes           int            `json:"routes"`
	PeerASes         int            `json:"peer_ases"`
	RootCause        *jsonRootCause `json:"root_cause,omitempty"`
}

type jsonRootCause struct {
	Candidate     uint32   `json:"candidate_as"`
	CommonSubpath []uint32 `json:"common_subpath"`
	Routes        int      `json:"routes"`
	PeerASes      int      `json:"peer_ases"`
	Confidence    float64  `json:"confidence"`
}

type jsonLifespans struct {
	// DurationDays lists outbreak lifespans >= 1 day, noisy peers
	// excluded, in days.
	DurationDays  []float64          `json:"duration_days"`
	Resurrections []jsonResurrection `json:"resurrections"`
}

type jsonResurrection struct {
	Peer         jsonPeer  `json:"peer"`
	Prefix       string    `json:"prefix"`
	LastSeen     time.Time `json:"last_seen"`
	ReappearedAt time.Time `json:"reappeared_at"`
	Path         []uint32  `json:"path"`
}

func toJSONPeer(p zombie.PeerID) jsonPeer {
	return jsonPeer{Collector: p.Collector, AS: uint32(p.AS), Addr: p.Addr.String()}
}

func toUint32s(asns []bgp.ASN) []uint32 {
	out := make([]uint32, len(asns))
	for i, as := range asns {
		out[i] = uint32(as)
	}
	return out
}

// writeJSONReport renders the machine-readable counterpart of
// Summary.Render plus the lifespan and anomaly sections.
func writeJSONReport(w io.Writer, collectors int, s *zombie.Summary, lr *zombie.LifespanReport, anomalies *zombie.AnomalyReport) error {
	r := jsonReport{
		ThresholdMinutes: s.Threshold.Minutes(),
		Collectors:       collectors,
		Announcements:    s.Announcements,
		Counts: jsonCounts{
			WithDoubleCounting: jsonCount(s.WithDoubleCounting),
			Deduped:            jsonCount(s.Deduped),
			Clean:              jsonCount(s.Clean),
		},
		AffectedPercent: s.AffectedFraction() * 100,
		NoisyPeers:      []jsonPeer{},
		TopOutbreaks:    []jsonOutbreak{},
	}
	for _, p := range s.NoisyPeers {
		r.NoisyPeers = append(r.NoisyPeers, toJSONPeer(p))
	}
	for _, os := range s.TopOutbreaks {
		ob := os.Outbreak
		jo := jsonOutbreak{
			Prefix:           ob.Prefix.String(),
			IntervalStart:    ob.Interval.AnnounceAt,
			IntervalWithdraw: ob.Interval.WithdrawAt,
			Routes:           len(ob.Routes),
			PeerASes:         len(ob.PeerASes()),
		}
		if os.Inferred {
			jo.RootCause = &jsonRootCause{
				Candidate:     uint32(os.RootCause.Candidate),
				CommonSubpath: toUint32s(os.RootCause.CommonSubpath),
				Routes:        os.RootCause.Routes,
				PeerASes:      os.RootCause.PeerASes,
				Confidence:    os.RootCause.Confidence,
			}
		}
		r.TopOutbreaks = append(r.TopOutbreaks, jo)
	}
	if lr != nil {
		ls := &jsonLifespans{DurationDays: []float64{}, Resurrections: []jsonResurrection{}}
		for _, d := range lr.Durations(24*time.Hour, s.NoisyASSet(), s.NoisyAddrSet()) {
			ls.DurationDays = append(ls.DurationDays, d.Hours()/24)
		}
		for _, res := range lr.Resurrections() {
			ls.Resurrections = append(ls.Resurrections, jsonResurrection{
				Peer:         toJSONPeer(res.Peer),
				Prefix:       res.Prefix.String(),
				LastSeen:     res.LastSeen,
				ReappearedAt: res.ReappearedAt,
				Path:         toUint32s(res.Path.ASNs()),
			})
		}
		r.Lifespans = ls
	}
	if anomalies != nil {
		ja := &jsonAnomalies{ByDetector: anomalies.ByDetector, Findings: []jsonAnomaly{}}
		for _, a := range anomalies.Findings {
			f := jsonAnomaly{
				Detector:        a.Detector,
				Kind:            a.Kind,
				Prefix:          a.Prefix.String(),
				Start:           a.Start,
				End:             a.End,
				LifespanMinutes: a.Lifespan().Minutes(),
				Count:           a.Count,
				Detail:          a.Detail,
			}
			if a.Peer != (zombie.PeerID{}) {
				p := toJSONPeer(a.Peer)
				f.Peer = &p
			}
			if len(a.Origins) > 0 {
				f.Origins = toUint32s(a.Origins)
			}
			ja.Findings = append(ja.Findings, f)
		}
		r.Anomalies = ja
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
