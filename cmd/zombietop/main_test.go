package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zombiescope/internal/livefeed"
	"zombiescope/internal/obs"
	"zombiescope/internal/statusz"
)

// syncBuffer is a bytes.Buffer safe to read while the dashboard loop
// writes from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// serveStatus runs a test HTTP server whose /statusz handler serves the
// given sequence of snapshots, one per request (the last repeats).
func serveStatus(t *testing.T, snaps ...statusz.Status) *httptest.Server {
	t.Helper()
	i := 0
	srv := httptest.NewServer(statusz.Handler(func() statusz.Status {
		st := snaps[i]
		if i < len(snaps)-1 {
			i++
		}
		return st
	}))
	t.Cleanup(srv.Close)
	return srv
}

func sample() statusz.Status {
	return statusz.Status{
		Server: "zombied/1", GoVersion: "go-test", NumCPU: 2,
		Ready: true, HeadSeq: 420, Subscribers: 2, Shards: 1,
		Counters: map[string]int64{"records_in": 100, "bytes_written": 9000},
		Stages: map[string]obs.HistogramSummary{
			"e2e": {Count: 99, P50: 150e-6, P99: 900e-6, P999: 2e-3},
		},
		Sessions: []livefeed.SessionInfo{
			{ID: 1, Policy: "drop-oldest", Lag: 3, Queue: 2, Cap: 8},
			{ID: 2, Policy: "block", Lag: 40, Queue: 8, Cap: 8},
		},
	}
}

// TestOneshot pins the CI smoke entry point: one fetch, one frame, no
// clear sequence, rates dashed out.
func TestOneshot(t *testing.T) {
	srv := serveStatus(t, sample())
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, srv.URL, time.Second, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"zombied/1", "head 420", "e2e", "in -", "drop-oldest"} {
		if !strings.Contains(out, want) {
			t.Errorf("oneshot frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("oneshot frame contains ANSI clear sequences")
	}
	// The highest-lag session leads the table.
	if strings.Index(out, "block") > strings.Index(out, "drop-oldest") {
		t.Errorf("sessions not sorted by lag:\n%s", out)
	}
}

// TestLoopRates checks the second frame derives rates from the counter
// deltas of consecutive snapshots and that the loop stops on ctx cancel.
func TestLoopRates(t *testing.T) {
	first := sample()
	second := sample()
	second.Counters["records_in"] = 300
	second.UnixNanos = first.UnixNanos // stamped by the handler anyway
	srv := serveStatus(t, first, second)

	ctx, cancel := context.WithCancel(context.Background())
	var buf syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, &buf, srv.URL, 10*time.Millisecond, 1, false) }()

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), "/s") {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no rate column after two frames:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("loop did not stop on cancel")
	}
	out := buf.String()
	if !strings.Contains(out, "\x1b[H\x1b[J") {
		t.Error("loop frames missing the ANSI repaint sequence")
	}
	// top=1 keeps only the worst session.
	if strings.Contains(out, "drop-oldest") {
		t.Errorf("top=1 should hide the low-lag session:\n%s", out)
	}
}

// TestFetchError: a dashboard that cannot reach its daemon exits with
// the error instead of spinning.
func TestFetchError(t *testing.T) {
	srv := serveStatus(t, sample())
	srv.Close()
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, srv.URL, time.Second, 0, true); err == nil {
		t.Fatal("run succeeded against a closed server")
	}
}
