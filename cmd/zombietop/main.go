// Command zombietop is a terminal dashboard over a zombied /statusz
// endpoint, in the spirit of top(1): it polls the JSON snapshot, derives
// event/byte rates from consecutive counter readings, and redraws a
// one-screen view — feed head, per-stage latency quantiles, and the
// subscriber sessions ranked by lag, so the subscriber currently hurting
// the feed is always the first row.
//
// Usage:
//
//	zombietop [-statusz http://127.0.0.1:8479/statusz] [-interval 2s] [-top 20]
//	zombietop -oneshot        # print one frame and exit (no rates; CI smoke)
//
// All rendering lives in internal/statusz (shared with the daemon's HTML
// view); this binary is only the fetch-clear-render loop.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zombiescope/internal/statusz"
)

func main() {
	var (
		url      = flag.String("statusz", "http://127.0.0.1:8479/statusz", "zombied /statusz URL to poll")
		interval = flag.Duration("interval", 2*time.Second, "poll/redraw interval")
		top      = flag.Int("top", 20, "session rows shown (0: all)")
		oneshot  = flag.Bool("oneshot", false, "print a single frame and exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, *url, *interval, *top, *oneshot); err != nil {
		fmt.Fprintln(os.Stderr, "zombietop:", err)
		os.Exit(1)
	}
}

// fetch retrieves and decodes one /statusz snapshot.
func fetch(client *http.Client, url string) (*statusz.Status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var st statusz.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &st, nil
}

// run is the dashboard loop: fetch, clear, render, sleep. In oneshot
// mode it renders exactly one frame (without rate columns — those need
// two snapshots) and returns. A fetch error ends the loop: a dashboard
// that cannot reach its daemon should say so and exit rather than
// redraw stale numbers.
func run(ctx context.Context, w io.Writer, url string, interval time.Duration, top int, oneshot bool) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var prev *statusz.Status
	for {
		cur, err := fetch(client, url)
		if err != nil {
			return err
		}
		if !oneshot {
			// ANSI home + clear-to-end: repaint in place without the flicker
			// a full-screen erase causes on slow terminals.
			fmt.Fprint(w, "\x1b[H\x1b[J")
		}
		statusz.Render(w, prev, cur, top)
		if oneshot {
			return nil
		}
		prev = cur
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}
