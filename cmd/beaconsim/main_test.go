package main

import "testing"

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Jul 19 - Aug 31, 2018": "Jul_19___Aug_31_2018",
		"rrc00":                 "rrc00",
		"a/b\\c":                "abc",
		"":                      "",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
