// Command beaconsim runs a beacon deployment scenario through the BGP
// simulator and writes the resulting MRT archives (updates and RIB dumps)
// to disk, where zombiehunt (or any MRT tool) can analyze them.
//
// Usage:
//
//	beaconsim -out ./archive [-scenario author|replication] [-seed 42] [-scale 8]
//
// The author scenario reproduces the paper's §4/§5 deployment (AS210312's
// IPv6 beacons, the scripted zombie case studies, ROA removal, a year of
// 8-hourly RIB dumps). The replication scenario reproduces the §3 RIS
// beacon periods.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zombiescope/internal/archive"
	"zombiescope/internal/experiments"
)

func main() {
	var (
		out      = flag.String("out", "archive", "output directory")
		scenario = flag.String("scenario", "author", "author | replication")
		seed     = flag.Uint64("seed", 42, "scenario seed")
		scale    = flag.Int("scale", 8, "scale divisor (1 = paper-length)")
	)
	flag.Parse()

	switch *scenario {
	case "author":
		d, err := experiments.RunAuthorScenario(experiments.DefaultAuthorConfig(*seed, *scale))
		if err != nil {
			fatal(err)
		}
		if err := archive.Write(*out, &archive.Set{Updates: d.Updates, Dumps: d.Dumps}); err != nil {
			fatal(err)
		}
		fmt.Printf("author scenario: %d announcements, %d beacon intervals\n",
			d.Announcements, len(d.Intervals))
		for name, c := range d.Cases {
			fmt.Printf("  scripted case %-12s prefix %-24s announced %s\n",
				name, c.Prefix.String(), c.AnnounceAt.Format("2006-01-02 15:04"))
		}
	case "replication":
		periods, err := experiments.RunReplication(experiments.DefaultReplicationConfig(*seed, *scale))
		if err != nil {
			fatal(err)
		}
		for _, pd := range periods {
			dir := filepath.Join(*out, sanitize(pd.Period.Name))
			if err := archive.Write(dir, &archive.Set{Updates: pd.Updates}); err != nil {
				fatal(err)
			}
			fmt.Printf("period %q: %d intervals, %d+%d announcements\n",
				pd.Period.Name, len(pd.Intervals), pd.Ann4, pd.Ann6)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	fmt.Printf("MRT archives written under %s\n", *out)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
