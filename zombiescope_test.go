package zombiescope_test

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"zombiescope"
	"zombiescope/internal/bgp"
	"zombiescope/internal/topology"
)

// TestFacadeEndToEnd drives the whole public surface: topology →
// simulator + faults → collector fleet → MRT bytes → detection → root
// cause, using only the root package.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := zombiescope.GenerateTopology(topology.GenerateConfig{
		Seed: 11, Tier1Count: 3, Tier2Count: 6, Tier3Count: 8, StubCount: 6,
		Tier2PeerProb: 0.2, FirstASN: 64500,
	})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.TierASNs(4)
	origin := stubs[0]
	peerASes := stubs[1:5]

	sim := zombiescope.NewSimulator(g, zombiescope.SimConfig{Seed: 11})
	fleet := zombiescope.NewFleet()
	sim.SetSink(fleet)
	for i, asn := range peerASes {
		addr := netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, byte(i), 15: 1})
		if err := sim.AddCollectorSession(zombiescope.Session{
			Collector: "rrc00", PeerAS: asn, PeerIP: addr, AFI: bgp.AFIIPv6,
		}); err != nil {
			t.Fatal(err)
		}
	}

	t0 := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	prefix := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
	agg := &zombiescope.Aggregator{ASN: origin, Addr: zombiescope.AggregatorClock(t0)}
	sim.EstablishCollectorSessions(t0.Add(-time.Minute))
	if err := sim.ScheduleAnnounce(t0, origin, prefix, agg); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleWithdraw(t0.Add(15*time.Minute), origin, prefix); err != nil {
		t.Fatal(err)
	}
	// Wedge the first peer's provider link: one zombie.
	victim := peerASes[0]
	provider := g.AS(victim).Providers()[0]
	sim.Faults().WedgeLink(provider, victim, 0, t0.Add(10*time.Minute), t0.Add(48*time.Hour),
		zombiescope.MatchWithin(netip.MustParsePrefix("2a0d:3dc1::/32")))
	sim.RunAll()

	interval := zombiescope.BeaconInterval{
		Prefix: prefix, AnnounceAt: t0,
		WithdrawAt: t0.Add(15 * time.Minute), End: t0.Add(24 * time.Hour),
	}
	det := &zombiescope.Detector{}
	rep, err := det.Detect(fleet.UpdatesData(), []zombiescope.BeaconInterval{interval})
	if err != nil {
		t.Fatal(err)
	}
	obs := rep.Filter(zombiescope.FilterOptions{})
	if len(obs) != 1 {
		t.Fatalf("outbreaks = %d, want 1", len(obs))
	}
	var sawVictim bool
	for _, r := range obs[0].Routes {
		if r.Peer.AS == victim {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Errorf("wedged peer %s not among zombie routes", victim)
	}
	if _, ok := zombiescope.InferRootCause(obs[0].Paths()); !ok {
		t.Error("no root cause inferred")
	}
}

// TestConvergenceProperty: for random small topologies without faults, an
// announce reaches every AS and a withdrawal removes every route — the
// simulator's core invariant.
func TestConvergenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.GenerateConfig{
			Seed:       seed,
			Tier1Count: 2 + int(seed%3),
			Tier2Count: 4 + int(seed%5),
			Tier3Count: 6 + int(seed%7),
			StubCount:  4,
			FirstASN:   64500,
		}
		g, err := topology.Generate(cfg)
		if err != nil {
			return false
		}
		stub := g.TierASNs(4)[int(seed%4)]
		sim := zombiescope.NewSimulator(g, zombiescope.SimConfig{Seed: seed})
		t0 := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
		prefix := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
		sim.ScheduleAnnounce(t0, stub, prefix, nil)
		sim.Run(t0.Add(time.Hour))
		if got := sim.RouteCount(prefix); got != g.Len() {
			t.Logf("seed %d: %d of %d ASes have the route", seed, got, g.Len())
			return false
		}
		sim.ScheduleWithdraw(t0.Add(2*time.Hour), stub, prefix)
		sim.RunAll()
		return sim.RouteCount(prefix) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// TestDetectorInvariantsProperty: dedup and exclusions never increase
// counts, and outbreak counts never exceed interval counts — over random
// fault configurations.
func TestDetectorInvariantsProperty(t *testing.T) {
	f := func(seed uint64, dropPct uint8) bool {
		g, err := topology.Generate(topology.GenerateConfig{
			Seed: seed, Tier1Count: 3, Tier2Count: 5, Tier3Count: 8, StubCount: 6, FirstASN: 64500,
		})
		if err != nil {
			return false
		}
		stubs := g.TierASNs(4)
		origin := stubs[0]
		sim := zombiescope.NewSimulator(g, zombiescope.SimConfig{Seed: seed})
		fleet := zombiescope.NewFleet()
		sim.SetSink(fleet)
		for i, asn := range stubs[1:] {
			addr := netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, byte(i), 15: 2})
			if err := sim.AddCollectorSession(zombiescope.Session{
				Collector: "rrc00", PeerAS: asn, PeerIP: addr, AFI: bgp.AFIIPv6,
			}); err != nil {
				return false
			}
		}
		sim.Faults().GlobalWithdrawalDrop(float64(dropPct%50)/100, nil)
		t0 := time.Date(2024, 6, 10, 0, 0, 0, 0, time.UTC)
		prefix := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
		var intervals []zombiescope.BeaconInterval
		for i := 0; i < 4; i++ {
			start := t0.Add(time.Duration(i) * 4 * time.Hour)
			agg := &zombiescope.Aggregator{ASN: origin, Addr: zombiescope.AggregatorClock(start)}
			sim.ScheduleAnnounce(start, origin, prefix, agg)
			sim.ScheduleWithdraw(start.Add(2*time.Hour), origin, prefix)
			intervals = append(intervals, zombiescope.BeaconInterval{
				Prefix: prefix, AnnounceAt: start,
				WithdrawAt: start.Add(2 * time.Hour), End: start.Add(4 * time.Hour),
			})
		}
		sim.RunAll()
		rep, err := (&zombiescope.Detector{}).Detect(fleet.UpdatesData(), intervals)
		if err != nil {
			return false
		}
		withDup := rep.Filter(zombiescope.FilterOptions{IncludeDuplicates: true})
		noDup := rep.Filter(zombiescope.FilterOptions{})
		if len(noDup) > len(withDup) {
			return false // dedup increased outbreaks
		}
		if len(withDup) > len(intervals) {
			return false // more outbreaks than intervals is impossible
		}
		// Excluding any one peer never increases the count.
		for _, p := range rep.Peers {
			excl := rep.Filter(zombiescope.FilterOptions{
				ExcludePeerAS: map[bgp.ASN]bool{p.AS: true},
			})
			if len(excl) > len(noDup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

// TestStuckRouteVisibleUntilCleared: a facade-level regression of the
// lifespan pipeline: a wedged route stays in RIB dumps until the operator
// clears it, and the measured duration matches the clearing schedule.
func TestStuckRouteVisibleUntilCleared(t *testing.T) {
	g := zombiescope.NewTopology()
	g.AddAS(1, "t1", 1)
	g.AddAS(10, "transit", 2)
	g.AddAS(100, "origin", 3)
	g.AddAS(200, "peer", 3)
	for _, l := range [][2]zombiescope.ASN{{10, 1}, {100, 10}, {200, 10}} {
		if err := g.AddC2P(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := zombiescope.NewSimulator(g, zombiescope.SimConfig{Seed: 5})
	fleet := zombiescope.NewFleet()
	sim.SetSink(fleet)
	sess := zombiescope.Session{Collector: "rrc00", PeerAS: 200,
		PeerIP: netip.MustParseAddr("2001:db8::1"), AFI: bgp.AFIIPv6}
	if err := sim.AddCollectorSession(sess); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	prefix := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
	sim.ScheduleAnnounce(t0, 100, prefix, nil)
	sim.ScheduleWithdraw(t0.Add(15*time.Minute), 100, prefix)
	sim.Faults().DropWithdrawals(10, 200, 1.0, nil)
	clearAt := t0.Add(10 * 24 * time.Hour)
	if err := sim.ScheduleClearRoutes(clearAt, 200, nil); err != nil {
		t.Fatal(err)
	}
	// Dump every 8h for 20 days.
	for ts := t0.Add(8 * time.Hour); ts.Before(t0.Add(20 * 24 * time.Hour)); ts = ts.Add(8 * time.Hour) {
		sim.Run(ts)
		fleet.SnapshotRIBs(ts)
	}
	sim.RunAll()
	iv := zombiescope.BeaconInterval{Prefix: prefix, AnnounceAt: t0,
		WithdrawAt: t0.Add(15 * time.Minute), End: t0.Add(30 * 24 * time.Hour)}
	lr, err := zombiescope.TrackLifespans(fleet.DumpData(), []zombiescope.BeaconInterval{iv},
		zombiescope.LifespanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := lr.Prefixes[prefix]
	if pl == nil {
		t.Fatal("prefix missing from lifespan report")
	}
	dur, ok := pl.Duration(nil, nil)
	if !ok {
		t.Fatal("no duration")
	}
	days := dur.Hours() / 24
	if days < 9 || days > 10.5 {
		t.Errorf("stuck for %.1f days, want ~10 (cleared on day 10)", days)
	}
}
