// Benchmarks: one per table and figure of the paper (each runs its
// experiment driver end to end — scenario simulation, MRT encoding,
// detection, rendering — on a fresh seed every iteration), plus
// micro-benchmarks of the wire codecs, the simulator, and the detector.
//
// The per-experiment benchmarks use Scale 16 (very short periods) so a
// full `go test -bench=.` stays in the minutes range; run the experiments
// command with -scale 1 for paper-length regeneration.
package zombiescope_test

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zombiescope/internal/archive"
	"zombiescope/internal/beacon"
	"zombiescope/internal/bgp"
	"zombiescope/internal/collector"
	"zombiescope/internal/experiments"
	"zombiescope/internal/livefeed"
	"zombiescope/internal/mrt"
	"zombiescope/internal/netsim"
	"zombiescope/internal/pipeline"
	"zombiescope/internal/topology"
	"zombiescope/internal/zombie"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// A distinct seed per experiment and per iteration defeats the
	// scenario cache, so every iteration pays the full pipeline cost.
	base := uint64(1000)
	for _, c := range id {
		base = base*31 + uint64(c)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.Config{Seed: base + uint64(i), Scale: 16})
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// Table benchmarks.
func BenchmarkTable1DoubleCounting(b *testing.B)  { benchExperiment(b, "Table1") }
func BenchmarkTable2StudyComparison(b *testing.B) { benchExperiment(b, "Table2") }
func BenchmarkTable3MissedZombies(b *testing.B)   { benchExperiment(b, "Table3") }
func BenchmarkTable4NoisyPeer(b *testing.B)       { benchExperiment(b, "Table4") }
func BenchmarkTable5NoisyRouters(b *testing.B)    { benchExperiment(b, "Table5") }

// Figure benchmarks.
func BenchmarkFig2ThresholdSweep(b *testing.B)       { benchExperiment(b, "Fig2") }
func BenchmarkFig3LifespanCDF(b *testing.B)          { benchExperiment(b, "Fig3") }
func BenchmarkFig4ResurrectionTimeline(b *testing.B) { benchExperiment(b, "Fig4") }
func BenchmarkFig5EmergenceRate(b *testing.B)        { benchExperiment(b, "Fig5") }
func BenchmarkFig6PathLengths(b *testing.B)          { benchExperiment(b, "Fig6") }
func BenchmarkFig7Concurrency(b *testing.B)          { benchExperiment(b, "Fig7") }

// Case-study benchmarks.
func BenchmarkCaseImpactful(b *testing.B)    { benchExperiment(b, "CaseImpactful") }
func BenchmarkCaseLongLived(b *testing.B)    { benchExperiment(b, "CaseLongLived") }
func BenchmarkCaseResurrection(b *testing.B) { benchExperiment(b, "CaseResurrectionSubpath") }

// Extension benchmarks (ablations and the §6 discussion experiment).
func BenchmarkAblationMethodology(b *testing.B) { benchExperiment(b, "AblationMethodology") }
func BenchmarkAblationTimers(b *testing.B)      { benchExperiment(b, "AblationTimers") }
func BenchmarkDiscussionCombined(b *testing.B)  { benchExperiment(b, "DiscussionCombined") }
func BenchmarkDiscussionIPv4(b *testing.B)      { benchExperiment(b, "DiscussionIPv4Beacons") }
func BenchmarkDiscussionRouteViews(b *testing.B) {
	benchExperiment(b, "DiscussionRouteViews")
}

// BenchmarkStreamDetector measures the real-time detection path over a
// pre-sorted record stream.
func BenchmarkStreamDetector(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	type tsRec struct {
		name string
		rec  mrt.Record
	}
	var stream []tsRec
	for name, raw := range d.Updates {
		rd := mrt.NewReader(bytes.NewReader(raw))
		for {
			rec, err := rd.Next()
			if err != nil {
				break
			}
			stream = append(stream, tsRec{name, rec})
		}
	}
	sort.SliceStable(stream, func(i, j int) bool {
		return stream[i].rec.RecordTime().Before(stream[j].rec.RecordTime())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := 0
		sd := zombie.NewStreamDetector(d.Intervals, 90*time.Minute, func(zombie.ZombieEvent) { events++ })
		for _, r := range stream {
			sd.Advance(r.rec.RecordTime())
			sd.Observe(r.name, r.rec)
		}
		sd.Advance(d.Config.TrackUntil)
		if events == 0 {
			b.Fatal("no events")
		}
	}
}

// --- micro-benchmarks ---

func benchUpdate() *bgp.Update {
	return &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			Origin:    bgp.OriginIGP,
			ASPath:    bgp.NewASPath(61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312),
			Aggregator: &bgp.Aggregator{
				ASN:  210312,
				Addr: beacon.AggregatorClock(time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)),
			},
			MPReach: &bgp.MPReachNLRI{
				AFI:     bgp.AFIIPv6,
				SAFI:    bgp.SAFIUnicast,
				NextHop: netip.MustParseAddr("2001:db8::1"),
				NLRI:    []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
			},
		},
	}
}

func BenchmarkBGPUpdateEncode(b *testing.B) {
	u := benchUpdate()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = u.AppendWireFormat(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPUpdateDecode(b *testing.B) {
	u := benchUpdate()
	wire, err := u.AppendWireFormat(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.DecodeUpdate(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRTWriteRead(b *testing.B) {
	u := benchUpdate()
	wire, err := u.AppendWireFormat(nil)
	if err != nil {
		b.Fatal(err)
	}
	rec := &mrt.BGP4MPMessage{
		Timestamp: time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC),
		PeerAS:    61573,
		LocalAS:   12654,
		AFI:       bgp.AFIIPv6,
		PeerIP:    netip.MustParseAddr("2001:db8:feed::1"),
		LocalIP:   netip.MustParseAddr("2001:67c::1"),
		Data:      wire,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mrt.NewWriter(&buf).Write(rec); err != nil {
			b.Fatal(err)
		}
		if _, err := mrt.ReadAll(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimBeaconCycle measures one full announce+withdraw propagation
// over a ~400-AS Internet-like topology.
func BenchmarkSimBeaconCycle(b *testing.B) {
	g, err := topology.Generate(topology.DefaultGenerateConfig(5))
	if err != nil {
		b.Fatal(err)
	}
	origin := g.TierASNs(4)[0]
	prefix := netip.MustParsePrefix("2a0d:3dc1:1200::/48")
	t0 := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(g, netsim.Config{Seed: uint64(i + 1)})
		sim.ScheduleAnnounce(t0, origin, prefix, nil)
		sim.ScheduleWithdraw(t0.Add(15*time.Minute), origin, prefix)
		sim.RunAll()
		if sim.RouteCount(prefix) != 0 {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkDetector measures the revised detection over a prebuilt
// archive of one simulated day of author beacons.
func BenchmarkDetector(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	det := &zombie.Detector{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := det.Detect(d.Updates, d.Intervals)
		if err != nil {
			b.Fatal(err)
		}
		_ = rep.Filter(zombie.FilterOptions{})
	}
}

// BenchmarkHistoryReconstruction isolates the MRT parsing + state
// reconstruction stage.
func BenchmarkHistoryReconstruction(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	track := make(zombie.TrackSet)
	for _, iv := range d.Intervals {
		track[iv.Prefix] = true
	}
	var total int
	for _, data := range d.Updates {
		total += len(data)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zombie.BuildHistory(d.Updates, track); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLifespanTracking isolates the RIB-dump lifespan stage over the
// year-long dump archive.
func BenchmarkLifespanTracking(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for _, data := range d.Dumps {
		total += len(data)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zombie.TrackLifespans(d.Dumps, d.Intervals, zombie.LifespanConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAuthorConfig() experiments.AuthorConfig {
	cfg := experiments.DefaultAuthorConfig(77, 16)
	return cfg
}

// pipelineWorkerCounts are the parallelism levels the pipeline benchmarks
// sweep: sequential baseline, single worker (pipeline overhead), the
// fixed scaling-curve points 2 and 4 (what the committed baselines
// record), and every core.
func pipelineWorkerCounts() []int {
	counts := []int{0, 1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkArchiveIngest measures the disk-to-records ingest path end to
// end — open an on-disk archive directory, decode every MRT record in
// borrow mode, release — comparing the mmap zero-copy path
// (archive.OpenMapped: each rotated file stays its own mapped segment,
// record bodies alias the mapping) against the ReadFull heap path
// (archive.Load: every collector's files are read and concatenated into
// one heap buffer). Both modes decode through the same chunked fold with
// a fixed worker count, so chunking — and therefore allocs/op — is
// machine-independent and the committed BENCH_ingest.json alloc fence
// holds everywhere. B/op is the structural proof of "no per-record body
// copies": readfull pays at least the archive size in heap per
// iteration, mmap allocates only per-chunk scaffolding.
func BenchmarkArchiveIngest(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := archive.Write(dir, &archive.Set{Updates: d.Updates, Dumps: d.Dumps}); err != nil {
		b.Fatal(err)
	}
	var total int
	for _, data := range d.Updates {
		total += len(data)
	}

	fold := func(streams map[string][][]byte) int {
		e := &pipeline.Engine{Workers: 4, Borrow: true, Metrics: &pipeline.Metrics{}}
		_, accs, err := pipeline.FoldStreams(e, streams,
			func(pipeline.FileChunk) *int { return new(int) },
			func(acc *int, _ pipeline.FileChunk, _ int, _ mrt.Record) error { *acc++; return nil },
		)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, file := range accs {
			for _, acc := range file {
				n += *acc
			}
		}
		return n
	}

	b.Run("mode=readfull", func(b *testing.B) {
		b.SetBytes(int64(total))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set, err := archive.Load(dir)
			if err != nil {
				b.Fatal(err)
			}
			streams := make(map[string][][]byte, len(set.Updates))
			for name, data := range set.Updates {
				streams[name] = [][]byte{data}
			}
			if fold(streams) == 0 {
				b.Fatal("no records")
			}
		}
	})
	b.Run("mode=mmap", func(b *testing.B) {
		b.SetBytes(int64(total))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms, err := archive.OpenMapped(dir)
			if err != nil {
				b.Fatal(err)
			}
			if fold(ms.Updates) == 0 {
				b.Fatal("no records")
			}
			ms.Close()
		}
	})
}

// BenchmarkPipelineDecode measures concurrent chunked MRT decoding of the
// author-scenario update archives against the sequential reader (workers=0).
func BenchmarkPipelineDecode(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for _, data := range d.Updates {
		total += len(data)
	}
	for _, workers := range pipelineWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(total))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if workers == 0 {
					n := 0
					for _, data := range d.Updates {
						recs, err := mrt.ReadAll(bytes.NewReader(data))
						if err != nil {
							b.Fatal(err)
						}
						n += len(recs)
					}
					if n == 0 {
						b.Fatal("no records")
					}
					continue
				}
				e := &pipeline.Engine{Workers: workers, Metrics: &pipeline.Metrics{}}
				files, err := e.DecodeArchives(d.Updates)
				if err != nil {
					b.Fatal(err)
				}
				if len(files) == 0 {
					b.Fatal("no files")
				}
			}
		})
	}
}

// BenchmarkPipelineDetect measures the full detection path — archive decode,
// sharded history build, merge, interval evaluation — per worker count
// (workers=0 is the sequential fallback).
func BenchmarkPipelineDetect(b *testing.B) {
	d, err := experiments.RunAuthorScenario(benchAuthorConfig())
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for _, data := range d.Updates {
		total += len(data)
	}
	for _, workers := range pipelineWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			det := &zombie.Detector{Parallelism: workers}
			b.SetBytes(int64(total))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := det.Detect(d.Updates, d.Intervals)
				if err != nil {
					b.Fatal(err)
				}
				_ = rep.Filter(zombie.FilterOptions{})
			}
		})
	}
}

// benchFanoutEvent is the typical UPDATE payload the fan-out benchmarks
// publish; raw bytes are omitted so they isolate fan-out, not MRT
// encoding.
func benchFanoutEvent() livefeed.Event {
	return livefeed.Event{
		Channel:   livefeed.ChannelUpdates,
		Type:      livefeed.TypeUpdate,
		Collector: "rrc00",
		Timestamp: time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC),
		PeerAS:    61573,
		Peer:      netip.MustParseAddr("2001:db8:feed::1"),
		Path:      []bgp.ASN{61573, 3356, 8298, 210312},
		Announcements: []livefeed.Announcement{{
			NextHop:  netip.MustParseAddr("2001:db8::1"),
			Prefixes: []netip.Prefix{netip.MustParsePrefix("2a0d:3dc1:1851::/48")},
		}},
	}
}

// benchFanoutSubs are the subscriber populations the fan-out benchmarks
// sweep — up to RIS-Live order of magnitude.
var benchFanoutSubs = []int{1, 100, 10000, 100000}

// runFanoutBench publishes b.N events into a broker with subs attached
// blocking subscribers whose rings are drained by a small pool of
// polling goroutines (subscribers are multiplexed, not one goroutine
// each, so 100k subscribers measure fan-out rather than scheduler
// load). The block policy makes delivery lossless, so every published
// event reaches every subscriber and the measurement is end-to-end
// delivery cost rather than load shedding. deliver is called for every
// dequeued frame — the per-delivery cost under measurement. Reported
// metrics: ns/op and allocs/op are per published event; deliv/op is the
// fan-out (== subs, asserted); deliv/s is delivery throughput including
// drain time.
func runFanoutBench(b *testing.B, subs int, deliver func(livefeed.Frame)) {
	broker := livefeed.NewBroker(livefeed.Config{RingSize: 64, ReplaySize: -1})
	list := make([]*livefeed.Subscriber, subs)
	for i := range list {
		sub, _, err := broker.Subscribe(livefeed.Filter{}, livefeed.PolicyBlock, 0)
		if err != nil {
			b.Fatal(err)
		}
		list[i] = sub
	}
	drainers := runtime.GOMAXPROCS(0)
	if drainers < 2 {
		drainers = 2
	}
	if drainers > subs {
		drainers = subs
	}
	var stop atomic.Bool
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for d := 0; d < drainers; d++ {
		part := list[d*subs/drainers : (d+1)*subs/drainers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for {
				progress := false
				for _, sub := range part {
					for {
						fr, ok := sub.TryNextFrame()
						if !ok {
							break
						}
						deliver(fr)
						fr.Release()
						local++
						progress = true
					}
				}
				if !progress {
					if stop.Load() {
						break
					}
					runtime.Gosched()
				}
			}
			delivered.Add(local)
		}()
	}
	ev := benchFanoutEvent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broker.Publish(ev)
	}
	broker.Close() // no new pushes; drainers empty the rings and exit
	stop.Store(true)
	wg.Wait()
	b.StopTimer()
	n := delivered.Load()
	if want := int64(subs) * int64(b.N); n != want {
		b.Fatalf("delivered %d frames, want %d (block policy is lossless)", n, want)
	}
	b.ReportMetric(float64(n)/float64(b.N), "deliv/op")
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "deliv/s")
}

// BenchmarkLivefeedFanout measures the encode-once broadcast path: one
// publisher, 1 to 100k subscribers sharing each event's single encoded
// frame. Delivery is the zero-copy dequeue the server's writev loop
// performs; allocs/op stays flat as subscribers grow because the encode
// happens once per publish, not once per subscriber.
func BenchmarkLivefeedFanout(b *testing.B) {
	for _, subs := range benchFanoutSubs {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			runFanoutBench(b, subs, func(fr livefeed.Frame) {
				// Touch the shared wire bytes the server's writev loop
				// would hand to the kernel; the frame release below is
				// the rest of the per-delivery cost.
				_ = fr.Wire()
			})
		})
	}
}

// BenchmarkLivefeedFanoutOracle is the pre-rework delivery cost kept as
// the comparison baseline: every dequeued event is re-encoded per
// subscriber (json.Marshal inside WriteFrame), exactly what the old
// server write loop did. The headline claim of the broadcast rework is
// the ratio between this benchmark and BenchmarkLivefeedFanout at high
// subscriber counts.
func BenchmarkLivefeedFanoutOracle(b *testing.B) {
	for _, subs := range benchFanoutSubs {
		if subs > 10000 {
			continue // the old path at 100k subscribers is pointlessly slow
		}
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			runFanoutBench(b, subs, func(fr livefeed.Frame) {
				ev := fr.Event()
				if err := livefeed.WriteFrame(io.Discard, livefeed.FrameEvent, &ev); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// BenchmarkPalmTree measures root-cause inference over a large outbreak.
func BenchmarkPalmTree(b *testing.B) {
	var paths []bgp.ASPath
	for i := 0; i < 500; i++ {
		paths = append(paths, bgp.NewASPath(
			bgp.ASN(65000+i), bgp.ASN(64000+i%7), 33891, 25091, 8298, 210312))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := zombie.InferRootCause(paths); !ok {
			b.Fatal("no root cause")
		}
	}
}

// BenchmarkCollectorSnapshot measures a TABLE_DUMP_V2 snapshot of a fleet
// with many sessions and prefixes.
func BenchmarkCollectorSnapshot(b *testing.B) {
	f := collector.NewFleet()
	t0 := time.Date(2024, 6, 10, 12, 0, 0, 0, time.UTC)
	for s := 0; s < 50; s++ {
		sess := netsim.Session{
			Collector: fmt.Sprintf("rrc%02d", s%4),
			PeerAS:    bgp.ASN(65000 + s),
			PeerIP:    netip.MustParseAddr(fmt.Sprintf("2001:db8::%x", s+1)),
			AFI:       bgp.AFIIPv6,
		}
		for p := 0; p < 40; p++ {
			prefix := netip.MustParsePrefix(fmt.Sprintf("2a0d:3dc1:%x::/48", 0x100+p))
			f.PeerAnnounce(t0, sess, prefix, netsim.RouteAttrs{
				Path: bgp.NewASPath(sess.PeerAS, 25091, 8298, 210312),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SnapshotRIBs(t0.Add(time.Duration(i+1) * 8 * time.Hour))
	}
}
